package grid

import (
	"fmt"
	"math"
)

// Grid3D describes a rectangular, cell-centred 3D grid with uniform
// spacing and a fixed halo depth on every side. It backs the 7-point
// stencil version of TeaLeaf; the paper focuses on 2D but notes that the
// 3D implementation and results are analogous.
type Grid3D struct {
	NX, NY, NZ             int
	Halo                   int
	XMin, XMax             float64
	YMin, YMax             float64
	ZMin, ZMax             float64
	DX, DY, DZ             float64
	strideY, strideZ, orig int
}

// NewGrid3D constructs a 3D grid with the given interior cell counts,
// halo depth, and physical extents.
func NewGrid3D(nx, ny, nz, halo int, xmin, xmax, ymin, ymax, zmin, zmax float64) (*Grid3D, error) {
	switch {
	case nx <= 0 || ny <= 0 || nz <= 0:
		return nil, fmt.Errorf("grid: cell counts must be positive, got %dx%dx%d", nx, ny, nz)
	case halo < 1 || halo > MaxHalo:
		return nil, fmt.Errorf("grid: halo depth %d outside [1,%d]", halo, MaxHalo)
	case xmax <= xmin || ymax <= ymin || zmax <= zmin:
		return nil, fmt.Errorf("grid: physical extents must be non-empty")
	}
	g := &Grid3D{
		NX: nx, NY: ny, NZ: nz, Halo: halo,
		XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax, ZMin: zmin, ZMax: zmax,
		DX: (xmax - xmin) / float64(nx),
		DY: (ymax - ymin) / float64(ny),
		DZ: (zmax - zmin) / float64(nz),
	}
	g.strideY = nx + 2*halo
	g.strideZ = g.strideY * (ny + 2*halo)
	g.orig = halo*g.strideZ + halo*g.strideY + halo
	return g, nil
}

// UnitGrid3D builds an n³ grid over the unit cube.
func UnitGrid3D(nx, ny, nz, halo int) *Grid3D {
	g, err := NewGrid3D(nx, ny, nz, halo, 0, 1, 0, 1, 0, 1)
	if err != nil {
		panic(err)
	}
	return g
}

// Len returns the padded storage length for one field.
func (g *Grid3D) Len() int {
	return (g.NX + 2*g.Halo) * (g.NY + 2*g.Halo) * (g.NZ + 2*g.Halo)
}

// Index maps cell coordinates (i,j,k) to a flat storage index; halo cells
// have negative coordinates.
func (g *Grid3D) Index(i, j, k int) int {
	return g.orig + k*g.strideZ + j*g.strideY + i
}

// Cells returns the number of interior cells.
func (g *Grid3D) Cells() int { return g.NX * g.NY * g.NZ }

// InInterior reports whether (i,j,k) is an interior cell.
func (g *Grid3D) InInterior(i, j, k int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY && k >= 0 && k < g.NZ
}

// CellCenter returns the physical centre of cell (i,j,k).
func (g *Grid3D) CellCenter(i, j, k int) (x, y, z float64) {
	return g.XMin + (float64(i)+0.5)*g.DX,
		g.YMin + (float64(j)+0.5)*g.DY,
		g.ZMin + (float64(k)+0.5)*g.DZ
}

// VertexX returns the x coordinate of the low face of column i.
func (g *Grid3D) VertexX(i int) float64 { return g.XMin + float64(i)*g.DX }

// VertexY returns the y coordinate of the low face of row j.
func (g *Grid3D) VertexY(j int) float64 { return g.YMin + float64(j)*g.DY }

// VertexZ returns the z coordinate of the low face of plane k.
func (g *Grid3D) VertexZ(k int) float64 { return g.ZMin + float64(k)*g.DZ }

// CellVolume returns the volume of one cell.
func (g *Grid3D) CellVolume() float64 { return g.DX * g.DY * g.DZ }

// Sub returns the geometry of the box sub-grid covering interior cells
// [x0,x1) × [y0,y1) × [z0,z1) of g, with the same halo depth and cell
// widths. The sub-grid carries true physical coordinates so its cell
// centres coincide with the parent's — the per-rank grid of the
// distributed 3D solvers.
func (g *Grid3D) Sub(x0, x1, y0, y1, z0, z1 int) (*Grid3D, error) {
	if x0 < 0 || y0 < 0 || z0 < 0 || x1 > g.NX || y1 > g.NY || z1 > g.NZ ||
		x0 >= x1 || y0 >= y1 || z0 >= z1 {
		return nil, fmt.Errorf("grid: 3D sub-extent [%d,%d)x[%d,%d)x[%d,%d) outside %dx%dx%d",
			x0, x1, y0, y1, z0, z1, g.NX, g.NY, g.NZ)
	}
	return NewGrid3D(x1-x0, y1-y0, z1-z0, g.Halo,
		g.VertexX(x0), g.VertexX(x1), g.VertexY(y0), g.VertexY(y1), g.VertexZ(z0), g.VertexZ(z1))
}

func (g *Grid3D) String() string {
	return fmt.Sprintf("Grid3D(%dx%dx%d, halo=%d)", g.NX, g.NY, g.NZ, g.Halo)
}

// Field3D is a halo-padded scalar field on a Grid3D.
type Field3D struct {
	Grid *Grid3D
	Data []float64
}

// NewField3D allocates a zeroed field on g.
func NewField3D(g *Grid3D) *Field3D {
	return &Field3D{Grid: g, Data: make([]float64, g.Len())}
}

// At returns the value at (i,j,k).
func (f *Field3D) At(i, j, k int) float64 { return f.Data[f.Grid.Index(i, j, k)] }

// Set stores v at (i,j,k).
func (f *Field3D) Set(i, j, k int, v float64) { f.Data[f.Grid.Index(i, j, k)] = v }

// Fill sets every entry (halos included) to v.
func (f *Field3D) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// CopyFrom copies src's data into f (identical grid shapes required).
func (f *Field3D) CopyFrom(src *Field3D) {
	if len(f.Data) != len(src.Data) {
		panic(fmt.Sprintf("grid: 3D CopyFrom shape mismatch: %d vs %d", len(f.Data), len(src.Data)))
	}
	copy(f.Data, src.Data)
}

// Clone returns a deep copy.
func (f *Field3D) Clone() *Field3D {
	c := NewField3D(f.Grid)
	copy(c.Data, f.Data)
	return c
}

// SumInterior returns the sum over interior cells.
func (f *Field3D) SumInterior() float64 {
	g := f.Grid
	var s float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			base := g.Index(0, j, k)
			for i := 0; i < g.NX; i++ {
				s += f.Data[base+i]
			}
		}
	}
	return s
}

// SumBounds returns the sum of the field over b.
func (f *Field3D) SumBounds(b Bounds3D) float64 {
	g := f.Grid
	var s float64
	for k := b.Z0; k < b.Z1; k++ {
		for j := b.Y0; j < b.Y1; j++ {
			base := g.Index(0, j, k)
			for i := b.X0; i < b.X1; i++ {
				s += f.Data[base+i]
			}
		}
	}
	return s
}

// MeanInterior returns the mean over interior cells.
func (f *Field3D) MeanInterior() float64 { return f.SumInterior() / float64(f.Grid.Cells()) }

// MaxDiff returns the max absolute interior difference against o.
func (f *Field3D) MaxDiff(o *Field3D) float64 {
	g := f.Grid
	var m float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				d := math.Abs(f.At(i, j, k) - o.At(i, j, k))
				if d > m {
					m = d
				}
			}
		}
	}
	return m
}

// Row returns the slice of storage covering cells [x0,x1) of row (j,k).
// The slice aliases the field's data.
func (f *Field3D) Row(j, k, x0, x1 int) []float64 {
	base := f.Grid.Index(x0, j, k)
	return f.Data[base : base+(x1-x0)]
}

// ReflectHalos fills halo cells by mirroring interior cells on all six
// faces (zero-flux boundary), edges and corners included.
func (f *Field3D) ReflectHalos(depth int) {
	f.ReflectHalosSides(depth, true, true, true, true, true, true)
}

// ReflectHalosSides mirrors only the requested sides (used on ranks whose
// sub-domain touches the physical boundary on some sides only). The fill
// order — x faces over interior rows, then y faces spanning the x halos,
// then z faces spanning both — matches the three-phase exchange, so edge
// and corner halo cells are coherent for deep stencils.
func (f *Field3D) ReflectHalosSides(depth int, left, right, down, up, back, front bool) {
	g := f.Grid
	if depth > g.Halo {
		depth = g.Halo
	}
	// X faces.
	if left || right {
		for k := -depth; k < g.NZ+depth; k++ {
			for j := -depth; j < g.NY+depth; j++ {
				for d := 1; d <= depth; d++ {
					if left {
						f.Set(-d, j, k, f.At(d-1, j, k))
					}
					if right {
						f.Set(g.NX-1+d, j, k, f.At(g.NX-d, j, k))
					}
				}
			}
		}
	}
	// Y faces (spanning x halos).
	if down || up {
		for k := -depth; k < g.NZ+depth; k++ {
			for d := 1; d <= depth; d++ {
				for i := -depth; i < g.NX+depth; i++ {
					if down {
						f.Set(i, -d, k, f.At(i, d-1, k))
					}
					if up {
						f.Set(i, g.NY-1+d, k, f.At(i, g.NY-d, k))
					}
				}
			}
		}
	}
	// Z faces (spanning x and y halos).
	if back || front {
		for d := 1; d <= depth; d++ {
			for j := -depth; j < g.NY+depth; j++ {
				for i := -depth; i < g.NX+depth; i++ {
					if back {
						f.Set(i, j, -d, f.At(i, j, d-1))
					}
					if front {
						f.Set(i, j, g.NZ-1+d, f.At(i, j, g.NZ-d))
					}
				}
			}
		}
	}
}
