package grid

import (
	"testing"
	"testing/quick"
)

func TestPartitionValidation(t *testing.T) {
	if _, err := NewPartition(0, 4, 1, 1); err == nil {
		t.Error("zero nx must error")
	}
	if _, err := NewPartition(4, 4, 5, 1); err == nil {
		t.Error("more rank-columns than cells must error")
	}
	if _, err := NewPartition(4, 4, 0, 2); err == nil {
		t.Error("zero px must error")
	}
	if _, err := NewPartition(16, 16, 4, 4); err != nil {
		t.Errorf("valid partition errored: %v", err)
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	for _, c := range []struct{ nx, ny, px, py int }{
		{16, 16, 4, 4}, {17, 13, 3, 5}, {100, 1, 7, 1}, {5, 5, 5, 5}, {4000, 4000, 64, 32},
	} {
		p := MustPartition(c.nx, c.ny, c.px, c.py)
		total := 0
		for r := 0; r < p.Ranks(); r++ {
			e := p.ExtentOf(r)
			if e.NX() <= 0 || e.NY() <= 0 {
				t.Fatalf("%v rank %d has empty extent %v", p, r, e)
			}
			total += e.Cells()
		}
		if total != c.nx*c.ny {
			t.Errorf("%v covers %d cells, want %d", p, total, c.nx*c.ny)
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	p := MustPartition(17, 13, 3, 5)
	minC, maxC := 1<<30, 0
	for r := 0; r < p.Ranks(); r++ {
		e := p.ExtentOf(r)
		// Per-dimension extents must differ by at most one cell.
		if w := e.NX(); w < 17/3 || w > 17/3+1 {
			t.Errorf("rank %d width %d unbalanced", r, w)
		}
		if h := e.NY(); h < 13/5 || h > 13/5+1 {
			t.Errorf("rank %d height %d unbalanced", r, h)
		}
		c := e.Cells()
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > maxC/2 {
		t.Errorf("cell imbalance too large: %d..%d", minC, maxC)
	}
}

func TestPartitionNeighbors(t *testing.T) {
	p := MustPartition(12, 12, 3, 2)
	// Layout: ranks 0 1 2 / 3 4 5 (row-major, rank = cy*PX + cx).
	if n := p.Neighbor(0, Left); n != -1 {
		t.Errorf("rank 0 left = %d, want -1 (boundary)", n)
	}
	if n := p.Neighbor(0, Right); n != 1 {
		t.Errorf("rank 0 right = %d, want 1", n)
	}
	if n := p.Neighbor(0, Up); n != 3 {
		t.Errorf("rank 0 up = %d, want 3", n)
	}
	if n := p.Neighbor(4, Down); n != 1 {
		t.Errorf("rank 4 down = %d, want 1", n)
	}
	if n := p.Neighbor(5, Right); n != -1 {
		t.Errorf("rank 5 right = %d, want -1", n)
	}
	if !p.OnBoundary(2, Right) || p.OnBoundary(1, Right) {
		t.Error("OnBoundary wrong")
	}
}

func TestPartitionNeighborSymmetry(t *testing.T) {
	p := MustPartition(24, 18, 4, 3)
	for r := 0; r < p.Ranks(); r++ {
		for s := Left; s < NumSides; s++ {
			n := p.Neighbor(r, s)
			if n == -1 {
				continue
			}
			if back := p.Neighbor(n, s.Opposite()); back != r {
				t.Errorf("neighbor symmetry broken: %d --%v--> %d --%v--> %d", r, s, n, s.Opposite(), back)
			}
		}
	}
}

func TestPartitionOwnerOf(t *testing.T) {
	p := MustPartition(17, 13, 3, 5)
	for k := 0; k < 13; k++ {
		for j := 0; j < 17; j++ {
			r := p.OwnerOf(j, k)
			if r < 0 || r >= p.Ranks() {
				t.Fatalf("OwnerOf(%d,%d) = %d out of range", j, k, r)
			}
			e := p.ExtentOf(r)
			if j < e.X0 || j >= e.X1 || k < e.Y0 || k >= e.Y1 {
				t.Fatalf("OwnerOf(%d,%d) = %d whose extent %+v does not contain it", j, k, r, e)
			}
		}
	}
	if p.OwnerOf(-1, 0) != -1 || p.OwnerOf(0, 13) != -1 {
		t.Error("out-of-grid cells must have owner -1")
	}
}

func TestPartitionOwnerQuick(t *testing.T) {
	p := MustPartition(101, 67, 7, 4)
	f := func(ju, ku uint) bool {
		j, k := int(ju%101), int(ku%67)
		e := p.ExtentOf(p.OwnerOf(j, k))
		return j >= e.X0 && j < e.X1 && k >= e.Y0 && k < e.Y1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorNearSquare(t *testing.T) {
	cases := []struct {
		n, nx, ny      int
		wantPX, wantPY int
	}{
		{1, 100, 100, 1, 1},
		{4, 100, 100, 2, 2},
		{16, 4000, 4000, 4, 4},
		{2, 100, 100, 2, 1}, // prefers px >= py on square grids
		{8192, 4000, 4000, 128, 64},
	}
	for _, c := range cases {
		px, py := FactorNearSquare(c.n, c.nx, c.ny)
		if px*py != c.n {
			t.Errorf("FactorNearSquare(%d) = %dx%d does not multiply to n", c.n, px, py)
		}
		if px != c.wantPX || py != c.wantPY {
			t.Errorf("FactorNearSquare(%d,%d,%d) = %dx%d, want %dx%d",
				c.n, c.nx, c.ny, px, py, c.wantPX, c.wantPY)
		}
	}
	// Wide grids should prefer wide process grids.
	px, py := FactorNearSquare(8, 1000, 10)
	if px < py {
		t.Errorf("wide grid got %dx%d, want px >= py", px, py)
	}
}

func TestPartitionRankCoordsRoundTrip(t *testing.T) {
	p := MustPartition(40, 40, 5, 8)
	for r := 0; r < p.Ranks(); r++ {
		cx, cy := p.CoordsOf(r)
		if p.RankAt(cx, cy) != r {
			t.Fatalf("RankAt(CoordsOf(%d)) != %d", r, r)
		}
	}
	if p.RankAt(-1, 0) != -1 || p.RankAt(0, 8) != -1 {
		t.Error("out-of-grid coords must map to -1")
	}
}
