package grid

import (
	"fmt"
	"math"
)

// Side identifies one face of a rectangular sub-domain.
type Side int

// The four sides of a 2D sub-domain, in TeaLeaf's CHUNK_LEFT.. order.
const (
	Left Side = iota
	Right
	Down
	Up
	NumSides
)

// Opposite returns the facing side (Left<->Right, Down<->Up, Back<->Front).
func (s Side) Opposite() Side {
	switch s {
	case Left:
		return Right
	case Right:
		return Left
	case Down:
		return Up
	case Up:
		return Down
	case Back:
		return Front
	case Front:
		return Back
	}
	panic(fmt.Sprintf("grid: invalid side %d", int(s)))
}

func (s Side) String() string {
	switch s {
	case Left:
		return "left"
	case Right:
		return "right"
	case Down:
		return "down"
	case Up:
		return "up"
	case Back:
		return "back"
	case Front:
		return "front"
	}
	return fmt.Sprintf("side(%d)", int(s))
}

// Extent is a rank's rectangle of interior cells within the global grid,
// given as half-open ranges.
type Extent struct {
	X0, X1, Y0, Y1 int
}

// NX returns the sub-domain width in cells.
func (e Extent) NX() int { return e.X1 - e.X0 }

// NY returns the sub-domain height in cells.
func (e Extent) NY() int { return e.Y1 - e.Y0 }

// Cells returns the cell count of the extent.
func (e Extent) Cells() int { return e.NX() * e.NY() }

// Partition is a PX × PY rectangular decomposition of an NX × NY global
// grid, mirroring TeaLeaf's chunk decomposition. Rank r sits at
// (r mod PX, r / PX); remainder cells are distributed one per low-index
// rank so extents differ by at most one cell per dimension.
type Partition struct {
	NX, NY int
	PX, PY int
	// xsplit[i] is the first global column owned by rank-column i;
	// xsplit[PX] == NX. Similarly ysplit.
	xsplit, ysplit []int
}

// NewPartition builds a partition of an nx × ny grid over px × py ranks.
// Every rank must receive at least one cell in each dimension.
func NewPartition(nx, ny, px, py int) (*Partition, error) {
	if nx <= 0 || ny <= 0 || px <= 0 || py <= 0 {
		return nil, fmt.Errorf("grid: partition dims must be positive (%dx%d over %dx%d)", nx, ny, px, py)
	}
	if px > nx || py > ny {
		return nil, fmt.Errorf("grid: more ranks than cells (%dx%d over %dx%d)", nx, ny, px, py)
	}
	p := &Partition{NX: nx, NY: ny, PX: px, PY: py,
		xsplit: splits(nx, px), ysplit: splits(ny, py)}
	return p, nil
}

// MustPartition is NewPartition that panics on error.
func MustPartition(nx, ny, px, py int) *Partition {
	p, err := NewPartition(nx, ny, px, py)
	if err != nil {
		panic(err)
	}
	return p
}

func splits(n, p int) []int {
	s := make([]int, p+1)
	q, r := n/p, n%p
	for i := 0; i <= p; i++ {
		// Low-index ranks take the remainder cells, one each.
		s[i] = i*q + min(i, r)
	}
	return s
}

// Ranks returns the total rank count PX*PY.
func (p *Partition) Ranks() int { return p.PX * p.PY }

// CoordsOf returns rank r's (column, row) in the process grid.
func (p *Partition) CoordsOf(r int) (cx, cy int) { return r % p.PX, r / p.PX }

// RankAt returns the rank at process-grid coordinates (cx, cy), or -1 if
// the coordinates are outside the process grid.
func (p *Partition) RankAt(cx, cy int) int {
	if cx < 0 || cx >= p.PX || cy < 0 || cy >= p.PY {
		return -1
	}
	return cy*p.PX + cx
}

// ExtentOf returns the global cell rectangle owned by rank r.
func (p *Partition) ExtentOf(r int) Extent {
	cx, cy := p.CoordsOf(r)
	return Extent{
		X0: p.xsplit[cx], X1: p.xsplit[cx+1],
		Y0: p.ysplit[cy], Y1: p.ysplit[cy+1],
	}
}

// Neighbor returns the rank adjacent to r across side s, or -1 at the
// physical domain boundary.
func (p *Partition) Neighbor(r int, s Side) int {
	cx, cy := p.CoordsOf(r)
	switch s {
	case Left:
		return p.RankAt(cx-1, cy)
	case Right:
		return p.RankAt(cx+1, cy)
	case Down:
		return p.RankAt(cx, cy-1)
	case Up:
		return p.RankAt(cx, cy+1)
	}
	panic(fmt.Sprintf("grid: invalid side %d", int(s)))
}

// OwnerOf returns the rank owning global cell (j,k).
func (p *Partition) OwnerOf(j, k int) int {
	if j < 0 || j >= p.NX || k < 0 || k >= p.NY {
		return -1
	}
	return p.RankAt(searchSplit(p.xsplit, j), searchSplit(p.ysplit, k))
}

func searchSplit(s []int, v int) int {
	lo, hi := 0, len(s)-1 // invariant: s[lo] <= v < s[hi]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ColumnOf returns the rank-column owning global column j (j must lie in
// [0, NX)). Together with RowOf it gives per-axis ownership lookups, used
// by the deflation coarse space to map cells to blocks without a full
// OwnerOf rank computation.
func (p *Partition) ColumnOf(j int) int { return searchSplit(p.xsplit, j) }

// RowOf returns the rank-row owning global row k (k must lie in [0, NY)).
func (p *Partition) RowOf(k int) int { return searchSplit(p.ysplit, k) }

// OnBoundary reports whether rank r's sub-domain touches the physical
// domain boundary on side s.
func (p *Partition) OnBoundary(r int, s Side) bool { return p.Neighbor(r, s) == -1 }

// MinExtent returns the smallest per-rank cell counts in each dimension.
// Remainder cells go to low-index ranks, so the minimum is the floor
// division — identical on every rank, which lets collective operations
// validate against it without diverging.
func (p *Partition) MinExtent() (nx, ny int) { return p.NX / p.PX, p.NY / p.PY }

func (p *Partition) String() string {
	return fmt.Sprintf("Partition(%dx%d cells over %dx%d ranks)", p.NX, p.NY, p.PX, p.PY)
}

// FactorNearSquare splits n ranks into px × py with px*py == n and the
// aspect ratio as close to the grid's as possible, preferring px >= py for
// square grids. This mirrors TeaLeaf's tea_decompose chunk factorisation,
// which minimises the communication surface.
func FactorNearSquare(n, nx, ny int) (px, py int) {
	if n <= 0 {
		return 1, 1
	}
	bestPX, bestPY := n, 1
	bestCost := math.Inf(1)
	for q := 1; q*q <= n; q++ {
		if n%q != 0 {
			continue
		}
		for _, cand := range [2][2]int{{q, n / q}, {n / q, q}} {
			cx, cy := cand[0], cand[1]
			if cx > nx || cy > ny {
				continue
			}
			// Communication surface per rank: perimeter of the sub-domain.
			cost := float64(nx)/float64(cx) + float64(ny)/float64(cy)
			if cost < bestCost || (cost == bestCost && cx >= cy && bestPX < bestPY) {
				bestCost, bestPX, bestPY = cost, cx, cy
			}
		}
	}
	return bestPX, bestPY
}
