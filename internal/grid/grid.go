// Package grid provides the structured, cell-centred grids that TeaLeaf
// solves on: 2D and 3D rectangular meshes with halo padding, scalar fields
// stored in flat, stride-indexed arrays, and rectangular domain partitions
// used by the distributed solvers.
//
// Temperatures (and every other solver vector) live at cell centres.
// Every field is padded with a fixed halo depth on all sides so that the
// matrix-free stencil operators and the deep-halo matrix-powers kernel can
// read neighbour data without bounds checks. Interior cell (0,0) is the
// bottom-left cell; halo cells carry negative indices down to -Halo.
package grid

import (
	"errors"
	"fmt"
)

// MaxHalo is the deepest halo the library supports. The paper's
// matrix-powers kernel uses depths up to 16 on GPUs, so the cap is set
// slightly above that.
const MaxHalo = 20

// Grid2D describes a rectangular, cell-centred 2D grid with uniform
// spacing and a fixed halo depth on every side.
type Grid2D struct {
	// NX, NY are the interior cell counts in x and y.
	NX, NY int
	// Halo is the halo depth in cells on every side.
	Halo int
	// Physical extents of the interior region.
	XMin, XMax, YMin, YMax float64
	// DX, DY are the uniform cell widths.
	DX, DY float64

	stride int // row stride of padded storage (NX + 2*Halo)
	origin int // flat index of interior cell (0,0)
}

// NewGrid2D constructs a grid with nx × ny interior cells, halo-padded by
// halo cells per side, spanning [xmin,xmax] × [ymin,ymax].
func NewGrid2D(nx, ny, halo int, xmin, xmax, ymin, ymax float64) (*Grid2D, error) {
	switch {
	case nx <= 0 || ny <= 0:
		return nil, fmt.Errorf("grid: cell counts must be positive, got %d x %d", nx, ny)
	case halo < 1 || halo > MaxHalo:
		return nil, fmt.Errorf("grid: halo depth %d outside [1,%d]", halo, MaxHalo)
	case xmax <= xmin || ymax <= ymin:
		return nil, errors.New("grid: physical extents must be non-empty")
	}
	g := &Grid2D{
		NX: nx, NY: ny, Halo: halo,
		XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax,
		DX: (xmax - xmin) / float64(nx),
		DY: (ymax - ymin) / float64(ny),
	}
	g.stride = nx + 2*halo
	g.origin = halo*g.stride + halo
	return g, nil
}

// MustGrid2D is NewGrid2D that panics on error; for tests and examples.
func MustGrid2D(nx, ny, halo int, xmin, xmax, ymin, ymax float64) *Grid2D {
	g, err := NewGrid2D(nx, ny, halo, xmin, xmax, ymin, ymax)
	if err != nil {
		panic(err)
	}
	return g
}

// UnitGrid2D builds an nx × ny grid over the unit square with the given halo.
func UnitGrid2D(nx, ny, halo int) *Grid2D {
	return MustGrid2D(nx, ny, halo, 0, 1, 0, 1)
}

// Stride returns the padded row stride.
func (g *Grid2D) Stride() int { return g.stride }

// Len returns the padded storage length for one field.
func (g *Grid2D) Len() int { return (g.NX + 2*g.Halo) * (g.NY + 2*g.Halo) }

// Index maps cell coordinates (j,k), with j ∈ [-Halo, NX+Halo) and
// k ∈ [-Halo, NY+Halo), to a flat storage index.
func (g *Grid2D) Index(j, k int) int { return g.origin + k*g.stride + j }

// Coords is the inverse of Index.
func (g *Grid2D) Coords(idx int) (j, k int) {
	// Work in padded coordinates, which are non-negative.
	return idx%g.stride - g.Halo, idx/g.stride - g.Halo
}

// InInterior reports whether (j,k) is an interior (non-halo) cell.
func (g *Grid2D) InInterior(j, k int) bool {
	return j >= 0 && j < g.NX && k >= 0 && k < g.NY
}

// InPadded reports whether (j,k) is addressable (interior or halo).
func (g *Grid2D) InPadded(j, k int) bool {
	return j >= -g.Halo && j < g.NX+g.Halo && k >= -g.Halo && k < g.NY+g.Halo
}

// CellCenterX returns the x coordinate of the centre of column j.
func (g *Grid2D) CellCenterX(j int) float64 {
	return g.XMin + (float64(j)+0.5)*g.DX
}

// CellCenterY returns the y coordinate of the centre of row k.
func (g *Grid2D) CellCenterY(k int) float64 {
	return g.YMin + (float64(k)+0.5)*g.DY
}

// VertexX returns the x coordinate of the left face of column j.
func (g *Grid2D) VertexX(j int) float64 { return g.XMin + float64(j)*g.DX }

// VertexY returns the y coordinate of the bottom face of row k.
func (g *Grid2D) VertexY(k int) float64 { return g.YMin + float64(k)*g.DY }

// CellArea returns the area of one cell.
func (g *Grid2D) CellArea() float64 { return g.DX * g.DY }

// Cells returns the number of interior cells.
func (g *Grid2D) Cells() int { return g.NX * g.NY }

func (g *Grid2D) String() string {
	return fmt.Sprintf("Grid2D(%dx%d, halo=%d, [%g,%g]x[%g,%g])",
		g.NX, g.NY, g.Halo, g.XMin, g.XMax, g.YMin, g.YMax)
}

// Sub returns the geometry of the rectangular sub-grid covering interior
// cells [x0,x1) × [y0,y1) of g, with the same halo depth and cell widths.
// The sub-grid's physical extents are positioned so that its cell centres
// coincide with the parent's: this is the per-rank grid used by the
// distributed solvers.
func (g *Grid2D) Sub(x0, x1, y0, y1 int) (*Grid2D, error) {
	if x0 < 0 || y0 < 0 || x1 > g.NX || y1 > g.NY || x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("grid: sub-extent [%d,%d)x[%d,%d) outside %dx%d",
			x0, x1, y0, y1, g.NX, g.NY)
	}
	return NewGrid2D(x1-x0, y1-y0, g.Halo,
		g.VertexX(x0), g.VertexX(x1), g.VertexY(y0), g.VertexY(y1))
}

// Bounds is a half-open index rectangle [X0,X1) × [Y0,Y1) over cell
// coordinates. It is the unit of iteration for all kernels: the interior is
// Bounds{0, NX, 0, NY}, and the matrix-powers kernel runs kernels on
// expanded bounds that shrink between halo exchanges.
type Bounds struct {
	X0, X1, Y0, Y1 int
}

// Interior returns the interior bounds of g.
func (g *Grid2D) Interior() Bounds { return Bounds{0, g.NX, 0, g.NY} }

// Expand grows b by d cells on every side, clamped to the padded region of g.
func (b Bounds) Expand(d int, g *Grid2D) Bounds {
	e := Bounds{b.X0 - d, b.X1 + d, b.Y0 - d, b.Y1 + d}
	return e.ClampPadded(g)
}

// ExpandSides grows b by the given per-side amounts (clamped to padding).
// Sides that touch the physical domain boundary must not be expanded, which
// is what the per-side form is for.
func (b Bounds) ExpandSides(left, right, down, up int, g *Grid2D) Bounds {
	e := Bounds{b.X0 - left, b.X1 + right, b.Y0 - down, b.Y1 + up}
	return e.ClampPadded(g)
}

// Shrink contracts b by d cells on every side. The result may be empty.
func (b Bounds) Shrink(d int) Bounds {
	return Bounds{b.X0 + d, b.X1 - d, b.Y0 + d, b.Y1 - d}
}

// ShrinkToward contracts b by d cells on each side, but never inside the
// target bounds t: sides already at or inside t's corresponding side stay.
// This is the matrix-powers schedule step — extended bounds shrink toward
// the interior as halo data goes stale, but never past the interior.
func (b Bounds) ShrinkToward(d int, t Bounds) Bounds {
	s := b
	if s.X0 < t.X0 {
		s.X0 = min(s.X0+d, t.X0)
	}
	if s.X1 > t.X1 {
		s.X1 = max(s.X1-d, t.X1)
	}
	if s.Y0 < t.Y0 {
		s.Y0 = min(s.Y0+d, t.Y0)
	}
	if s.Y1 > t.Y1 {
		s.Y1 = max(s.Y1-d, t.Y1)
	}
	return s
}

// ClampPadded clamps b to the padded (addressable) region of g.
func (b Bounds) ClampPadded(g *Grid2D) Bounds {
	return Bounds{
		X0: max(b.X0, -g.Halo), X1: min(b.X1, g.NX+g.Halo),
		Y0: max(b.Y0, -g.Halo), Y1: min(b.Y1, g.NY+g.Halo),
	}
}

// ClampInterior clamps b to the interior region of g.
func (b Bounds) ClampInterior(g *Grid2D) Bounds {
	return Bounds{
		X0: max(b.X0, 0), X1: min(b.X1, g.NX),
		Y0: max(b.Y0, 0), Y1: min(b.Y1, g.NY),
	}
}

// Empty reports whether b contains no cells.
func (b Bounds) Empty() bool { return b.X0 >= b.X1 || b.Y0 >= b.Y1 }

// Cells returns the number of cells in b (0 if empty).
func (b Bounds) Cells() int {
	if b.Empty() {
		return 0
	}
	return (b.X1 - b.X0) * (b.Y1 - b.Y0)
}

// Contains reports whether (j,k) lies inside b.
func (b Bounds) Contains(j, k int) bool {
	return j >= b.X0 && j < b.X1 && k >= b.Y0 && k < b.Y1
}

// Within reports whether b lies entirely inside outer.
func (b Bounds) Within(outer Bounds) bool {
	if b.Empty() {
		return true
	}
	return b.X0 >= outer.X0 && b.X1 <= outer.X1 && b.Y0 >= outer.Y0 && b.Y1 <= outer.Y1
}

// Eq reports bounds equality.
func (b Bounds) Eq(o Bounds) bool { return b == o }

func (b Bounds) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", b.X0, b.X1, b.Y0, b.Y1)
}
