package grid

import "testing"

func TestPartition3DExtentsTile(t *testing.T) {
	p := MustPartition3D(10, 7, 5, 3, 2, 2)
	if p.Ranks() != 12 {
		t.Fatalf("ranks = %d", p.Ranks())
	}
	seen := make(map[[3]int]int)
	cells := 0
	for r := 0; r < p.Ranks(); r++ {
		e := p.ExtentOf(r)
		if e.NX() <= 0 || e.NY() <= 0 || e.NZ() <= 0 {
			t.Fatalf("rank %d: empty extent %+v", r, e)
		}
		cells += e.Cells()
		for k := e.Z0; k < e.Z1; k++ {
			for j := e.Y0; j < e.Y1; j++ {
				for i := e.X0; i < e.X1; i++ {
					seen[[3]int{i, j, k}]++
				}
			}
		}
	}
	if cells != 10*7*5 {
		t.Errorf("total cells = %d, want %d", cells, 10*7*5)
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("cell %v owned %d times", c, n)
		}
	}
}

func TestPartition3DCoordsRoundTrip(t *testing.T) {
	p := MustPartition3D(8, 8, 8, 2, 2, 2)
	for r := 0; r < p.Ranks(); r++ {
		cx, cy, cz := p.CoordsOf(r)
		if got := p.RankAt(cx, cy, cz); got != r {
			t.Errorf("rank %d -> (%d,%d,%d) -> %d", r, cx, cy, cz, got)
		}
	}
	if p.RankAt(-1, 0, 0) != -1 || p.RankAt(0, 2, 0) != -1 || p.RankAt(0, 0, 2) != -1 {
		t.Error("out-of-grid coordinates must map to -1")
	}
}

func TestPartition3DNeighborsAndBoundary(t *testing.T) {
	p := MustPartition3D(6, 6, 6, 2, 2, 2)
	r := p.RankAt(0, 0, 0)
	if !p.OnBoundary(r, Left) || !p.OnBoundary(r, Down) || !p.OnBoundary(r, Back) {
		t.Error("corner rank must touch low boundaries")
	}
	if p.OnBoundary(r, Right) || p.OnBoundary(r, Up) || p.OnBoundary(r, Front) {
		t.Error("corner rank must have high-side neighbours")
	}
	for _, s := range []Side{Left, Right, Down, Up, Back, Front} {
		n := p.Neighbor(r, s)
		if n < 0 {
			continue
		}
		if back := p.Neighbor(n, s.Opposite()); back != r {
			t.Errorf("side %v: neighbour %d's %v neighbour is %d, want %d", s, n, s.Opposite(), back, r)
		}
	}
}

func TestPartition3DValidation(t *testing.T) {
	if _, err := NewPartition3D(4, 4, 4, 5, 1, 1); err == nil {
		t.Error("more ranks than cells must error")
	}
	if _, err := NewPartition3D(0, 4, 4, 1, 1, 1); err == nil {
		t.Error("zero cells must error")
	}
}

func TestFactorNearCube(t *testing.T) {
	px, py, pz := FactorNearCube(8, 64, 64, 64)
	if px*py*pz != 8 || px != 2 || py != 2 || pz != 2 {
		t.Errorf("8 ranks on a cube: %dx%dx%d, want 2x2x2", px, py, pz)
	}
	px, py, pz = FactorNearCube(6, 64, 64, 64)
	if px*py*pz != 6 {
		t.Errorf("factorisation must multiply to n: %dx%dx%d", px, py, pz)
	}
	// A thin grid must not receive more ranks than cells in z.
	px, py, pz = FactorNearCube(16, 64, 64, 2)
	if px*py*pz != 16 || pz > 2 {
		t.Errorf("thin grid: %dx%dx%d", px, py, pz)
	}
}

func TestBounds3DShrinkTowardAndCells(t *testing.T) {
	g := UnitGrid3D(8, 8, 8, 3)
	in := g.Interior()
	b := in.ExpandSides(2, 2, 0, 2, 2, 0, g)
	if b != (Bounds3D{-2, 10, 0, 10, -2, 8}) {
		t.Fatalf("expanded = %v", b)
	}
	s := b.ShrinkToward(1, in)
	if s != (Bounds3D{-1, 9, 0, 9, -1, 8}) {
		t.Fatalf("shrunk = %v", s)
	}
	s = s.ShrinkToward(1, in).ShrinkToward(1, in)
	if s != in {
		t.Fatalf("shrinking must stop at the interior, got %v", s)
	}
	if in.Cells() != 512 || (Bounds3D{0, 0, 0, 5, 0, 5}).Cells() != 0 {
		t.Error("cells count wrong")
	}
	if !in.Within(b) || b.Within(in) {
		t.Error("Within wrong")
	}
}

func TestGrid3DSub(t *testing.T) {
	g := MustSub3DParent(t)
	sub, err := g.Sub(2, 6, 0, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NX != 4 || sub.NY != 4 || sub.NZ != 4 || sub.Halo != g.Halo {
		t.Fatalf("sub shape %v", sub)
	}
	// Cell centres must coincide with the parent's.
	x, y, z := sub.CellCenter(0, 0, 0)
	px, py, pz := g.CellCenter(2, 0, 4)
	if x != px || y != py || z != pz {
		t.Errorf("sub centre (%g,%g,%g) != parent (%g,%g,%g)", x, y, z, px, py, pz)
	}
	if _, err := g.Sub(0, 9, 0, 4, 0, 4); err == nil {
		t.Error("out-of-range sub must error")
	}
}

// MustSub3DParent builds the parent grid for the Sub test.
func MustSub3DParent(t *testing.T) *Grid3D {
	t.Helper()
	g, err := NewGrid3D(8, 8, 8, 2, 0, 2, 0, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestField3DReflectHalosSides(t *testing.T) {
	g := UnitGrid3D(4, 4, 4, 2)
	f := NewField3D(g)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				f.Set(i, j, k, float64(i+10*j+100*k))
			}
		}
	}
	f.ReflectHalosSides(2, true, false, true, false, true, false)
	if f.At(-1, 2, 2) != f.At(0, 2, 2) || f.At(-2, 2, 2) != f.At(1, 2, 2) {
		t.Error("left face not mirrored")
	}
	if f.At(2, -1, 2) != f.At(2, 0, 2) || f.At(2, 2, -2) != f.At(2, 2, 1) {
		t.Error("down/back faces not mirrored")
	}
	// Edge halo (left+down) must be coherent: mirror of the mirrored side.
	if f.At(-1, -1, 2) != f.At(0, 0, 2) {
		t.Error("xy edge halo incoherent")
	}
	if f.At(-1, -1, -1) != f.At(0, 0, 0) {
		t.Error("corner halo incoherent")
	}
	if f.At(5, 2, 2) != 0 {
		t.Error("unrequested side must stay untouched")
	}
}
