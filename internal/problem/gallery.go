package problem

import (
	"math"

	"tealeaf/internal/deck"
)

// This file is the hard-deck gallery: decks promoted from the propcheck
// fuzzing corpus (internal/propcheck, `teabench -exp fuzz`) because they
// work the solver stack hardest. Each constructor is a cleaned-up,
// hand-rounded version of a fuzz-found deck — the provenance (seed and
// deck index) is in the doc comment — and each is pinned by goldens in
// gallery_test.go so a solver change that alters its behaviour shows up
// as a diff, not a silent drift. examples/gallery runs all of them and
// renders the final fields.

// GalleryHotStripDeck is promoted from fuzz seed 1, deck 22: a tall thin
// hot strip (200× the background specific energy) punched through a
// light rectangle on an anisotropic 42×48 mesh. Moderate stiffness
// (rx ≈ 9) with a sharp localised source makes plain CG grind — about
// 200 iterations per step at eps 1e-10 — which made it the
// second-hardest deck of the seed-1 corpus.
func GalleryHotStripDeck() *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = 42, 48
	d.XMin, d.XMax = 4.6, 15.4
	d.YMin, d.YMax = 1.1, 14.7
	d.InitialTimestep = 0.575
	d.EndTime = 1e12 // step-limited
	d.EndStep = 2
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-10
	d.States = []deck.State{
		{Index: 1, Density: 1.71, Energy: 0.0594},
		{Index: 2, Density: 0.131, Energy: 0.402, Geometry: deck.GeomRectangle,
			XMin: 9.99, XMax: 13.6, YMin: 5.84, YMax: 9.97},
		{Index: 3, Density: 3.29, Energy: 12.1, Geometry: deck.GeomRectangle,
			XMin: 9.81, XMax: 10.6, YMin: 2.52, YMax: 10.7},
	}
	return d
}

// GalleryDeflatedPointsDeck is promoted from fuzz seed 1, deck 24 — the
// hardest deck of the corpus (~275 iterations per step). A stiff
// operator (Δt ≈ 2.27 on ~0.17-wide cells, rx ≈ 77) over a 44× density
// contrast, seeded with two point states, solved by the pipelined
// fused-dot CG with two-block subdomain deflation and depth-3 halos —
// the exact configuration stack whose interplay the fuzzer exists to
// cross-check.
func GalleryDeflatedPointsDeck() *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = 35, 31
	d.XMin, d.XMax = -3.94, 6.70
	d.YMin, d.YMax = 0.67, 5.98
	d.InitialTimestep = 2.27
	d.EndTime = 1e12 // step-limited
	d.EndStep = 3
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-9
	d.HaloDepth = 3
	d.FusedDots = true
	d.Pipelined = true
	d.UseDeflation = true
	d.DeflationBlocks = 2
	d.DeflationLevels = 1
	d.States = []deck.State{
		{Index: 1, Density: 5.94, Energy: 0.205},
		{Index: 2, Density: 0.358, Energy: 2.41, Geometry: deck.GeomRectangle,
			XMin: -2.90, XMax: 1.76, YMin: 1.09, YMax: 5.20},
		{Index: 3, Density: 0.399, Energy: 0.144, Geometry: deck.GeomRectangle,
			XMin: 1.34, XMax: 4.10, YMin: 1.98, YMax: 3.66},
		{Index: 4, Density: 0.136, Energy: 0.0551, Geometry: deck.GeomPoint,
			CX: 2.87, CY: 3.33},
		{Index: 5, Density: 1.85, Energy: 0.0411, Geometry: deck.GeomPoint,
			CX: 1.47, CY: 3.88},
	}
	return d
}

// GalleryNearSteadyDeck is the degenerate-startup pathology the fuzzer
// found in the solver itself (seed 3 and 7 corpora): a uniform
// single-state deck whose exact initial residual is zero, so the
// computed ‖r₀‖ is pure stencil roundoff (~ε·‖A‖·‖u‖). An r₀-relative
// stopping rule then asks for tol·‖r₀‖ — below the attainable floor —
// and the pipelined recurrence random-walks into a breakdown guard.
// The fix (internal/solver/loops.go, startupBaseSq) detects
// ‖r₀‖ ≤ 10·tol·‖b‖ at startup and declares victory in zero iterations;
// this deck pins that behaviour.
func GalleryNearSteadyDeck() *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = 24, 24
	d.XMin, d.XMax = 0, 3
	d.YMin, d.YMax = 0, 3
	d.InitialTimestep = 0.8
	d.EndTime = 1e12 // step-limited
	d.EndStep = 3
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-10
	d.Pipelined = true // the engine the pathology broke hardest
	d.States = []deck.State{
		{Index: 1, Density: 2.5, Energy: 0.75},
	}
	return d
}

// GalleryDecks returns the whole gallery with stable display names, in
// the order examples/gallery renders them.
func GalleryDecks() []struct {
	Name string
	Deck *deck.Deck
} {
	return []struct {
		Name string
		Deck *deck.Deck
	}{
		{"hot-strip", GalleryHotStripDeck()},
		{"deflated-points", GalleryDeflatedPointsDeck()},
		{"near-steady", GalleryNearSteadyDeck()},
	}
}

// GalleryStiffness reports rx = Δt/min(Δx,Δy)² for a gallery deck — the
// implicit operator's stiffness parameter quoted in the constructors'
// doc comments.
func GalleryStiffness(d *deck.Deck) float64 {
	dx := (d.XMax - d.XMin) / float64(d.XCells)
	dy := (d.YMax - d.YMin) / float64(d.YCells)
	h := math.Min(dx, dy)
	return d.InitialTimestep / (h * h)
}
