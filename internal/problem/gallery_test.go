package problem_test

// External test package: core imports problem for painting, so the
// gallery goldens — which need a full solve — live outside the import
// cycle.

import (
	"math"
	"testing"

	"tealeaf/internal/core"
	"tealeaf/internal/par"
	"tealeaf/internal/problem"
)

type galleryGolden struct {
	iters int     // exact: reductions are deterministic (PR 8)
	ie    float64 // final internal energy, pinned to 1e-12 relative
}

// The pins were measured on the serial reference path. Iteration counts
// are exact on purpose: any solver change that shifts convergence on
// these decks — fuzz-promoted precisely because they are the hardest —
// must show up as a conscious golden update, not silent drift.
var galleryGoldens = map[string]galleryGolden{
	"hot-strip":       {iters: 426, ie: 2.660088621857170e+02},
	"deflated-points": {iters: 824, ie: 5.709657009788449e+01},
	"near-steady":     {iters: 0, ie: 1.687500000000000e+01},
}

func TestGalleryGoldens(t *testing.T) {
	for _, g := range problem.GalleryDecks() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			want, ok := galleryGoldens[g.Name]
			if !ok {
				t.Fatalf("no golden recorded for gallery deck %q", g.Name)
			}
			if err := g.Deck.Validate(); err != nil {
				t.Fatalf("deck invalid: %v", err)
			}
			inst, err := core.NewSerial(g.Deck, par.Serial)
			if err != nil {
				t.Fatal(err)
			}
			ie0 := inst.Summarise().InternalEnergy
			sum, err := inst.Run(g.Deck.Steps())
			if err != nil {
				t.Fatal(err)
			}
			if sum.TotalIterations != want.iters {
				t.Errorf("iterations = %d, want %d", sum.TotalIterations, want.iters)
			}
			if rel := math.Abs(sum.InternalEnergy-want.ie) / want.ie; rel > 1e-12 {
				t.Errorf("internal energy = %.15e, want %.15e (rel %.2e)", sum.InternalEnergy, want.ie, rel)
			}
			// All gallery decks conserve to FP roundoff (reflecting
			// boundaries; the 1e-8 propcheck gate is very loose here).
			if drift := math.Abs(sum.InternalEnergy-ie0) / ie0; drift > 1e-12 {
				t.Errorf("conservation drift %.3e above roundoff", drift)
			}
		})
	}
}

// TestGalleryNearSteadyZeroIterations pins the fuzz-found startup
// pathology fix in isolation: a uniform deck's residual is pure stencil
// roundoff, and the solver must recognise ‖r₀‖ ≤ 10·tol·‖b‖ and stop at
// zero iterations with the field untouched — before the fix this deck
// failed outright with "solver did not converge".
func TestGalleryNearSteadyZeroIterations(t *testing.T) {
	d := problem.GalleryNearSteadyDeck()
	inst, err := core.NewSerial(d, par.Serial)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := inst.Run(d.Steps())
	if err != nil {
		t.Fatalf("near-steady deck must converge trivially, got: %v", err)
	}
	if sum.TotalIterations != 0 {
		t.Errorf("iterations = %d, want 0 (startup early exit)", sum.TotalIterations)
	}
	lo, hi := inst.Energy.MinMaxInterior()
	if lo != 0.75 || hi != 0.75 {
		t.Errorf("energy = [%v,%v], want the untouched uniform 0.75", lo, hi)
	}
}

// TestGalleryStiffness sanity-checks the stiffness figures quoted in the
// constructors' doc comments.
func TestGalleryStiffness(t *testing.T) {
	for _, tc := range []struct {
		name   string
		rx     float64
		lo, hi float64
	}{
		{"hot-strip", problem.GalleryStiffness(problem.GalleryHotStripDeck()), 5, 15},
		{"deflated-points", problem.GalleryStiffness(problem.GalleryDeflatedPointsDeck()), 50, 100},
		{"near-steady", problem.GalleryStiffness(problem.GalleryNearSteadyDeck()), 30, 80},
	} {
		if tc.rx < tc.lo || tc.rx > tc.hi {
			t.Errorf("%s: rx = %.2f outside documented regime [%g,%g]", tc.name, tc.rx, tc.lo, tc.hi)
		}
	}
}
