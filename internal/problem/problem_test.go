package problem

import (
	"math"
	"testing"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

func TestPaintBackgroundOnly(t *testing.T) {
	g := grid.MustGrid2D(8, 8, 1, 0, 10, 0, 10)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	states := []deck.State{{Index: 1, Density: 5, Energy: 0.5}}
	if err := Paint(states, den, en); err != nil {
		t.Fatal(err)
	}
	lo, hi := den.MinMaxInterior()
	if lo != 5 || hi != 5 {
		t.Errorf("density = [%v,%v], want uniform 5", lo, hi)
	}
	if en.At(3, 3) != 0.5 {
		t.Error("energy not painted")
	}
}

func TestPaintValidation(t *testing.T) {
	g := grid.MustGrid2D(4, 4, 1, 0, 1, 0, 1)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	if err := Paint(nil, den, en); err == nil {
		t.Error("no states must error")
	}
	bad := []deck.State{{Index: 1, Density: 1, Energy: 1, Geometry: deck.GeomRectangle}}
	if err := Paint(bad, den, en); err == nil {
		t.Error("background with geometry must error")
	}
}

func TestPaintRectangle(t *testing.T) {
	g := grid.MustGrid2D(10, 10, 1, 0, 10, 0, 10)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	states := []deck.State{
		{Index: 1, Density: 1, Energy: 0},
		{Index: 2, Density: 9, Energy: 2, Geometry: deck.GeomRectangle,
			XMin: 2, XMax: 5, YMin: 3, YMax: 7},
	}
	if err := Paint(states, den, en); err != nil {
		t.Fatal(err)
	}
	// Cell (3,4) centre is (3.5, 4.5): inside.
	if den.At(3, 4) != 9 || en.At(3, 4) != 2 {
		t.Error("interior of rectangle not painted")
	}
	// Cell (0,0) centre (0.5,0.5): outside.
	if den.At(0, 0) != 1 {
		t.Error("outside rectangle must stay background")
	}
	// Cell (1,3) centre (1.5,3.5): x outside [2,5].
	if den.At(1, 3) != 1 {
		t.Error("left of rectangle painted wrongly")
	}
}

func TestPaintCircle(t *testing.T) {
	g := grid.MustGrid2D(20, 20, 1, 0, 10, 0, 10)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	states := []deck.State{
		{Index: 1, Density: 1, Energy: 0},
		{Index: 2, Density: 3, Energy: 1, Geometry: deck.GeomCircle, CX: 5, CY: 5, Radius: 2},
	}
	if err := Paint(states, den, en); err != nil {
		t.Fatal(err)
	}
	// Centre cell.
	if den.At(10, 10) != 3 {
		t.Error("circle centre not painted")
	}
	// Far corner.
	if den.At(0, 0) != 1 {
		t.Error("far corner painted")
	}
	// Count painted cells ≈ π r² / cell area = π·4/0.25 ≈ 50.
	painted := 0
	for k := 0; k < 20; k++ {
		for j := 0; j < 20; j++ {
			if den.At(j, k) == 3 {
				painted++
			}
		}
	}
	if painted < 40 || painted > 60 {
		t.Errorf("circle painted %d cells, expected ≈ 50", painted)
	}
}

func TestPaintPoint(t *testing.T) {
	g := grid.MustGrid2D(10, 10, 1, 0, 10, 0, 10)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	states := []deck.State{
		{Index: 1, Density: 1, Energy: 0},
		{Index: 2, Density: 7, Energy: 1, Geometry: deck.GeomPoint, CX: 3.7, CY: 8.2},
	}
	if err := Paint(states, den, en); err != nil {
		t.Fatal(err)
	}
	painted := 0
	for k := 0; k < 10; k++ {
		for j := 0; j < 10; j++ {
			if den.At(j, k) == 7 {
				painted++
				if j != 3 || k != 8 {
					t.Errorf("point painted wrong cell (%d,%d)", j, k)
				}
			}
		}
	}
	if painted != 1 {
		t.Errorf("point painted %d cells, want 1", painted)
	}
}

func TestPaintLaterStatesOverwrite(t *testing.T) {
	g := grid.MustGrid2D(10, 10, 1, 0, 10, 0, 10)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	states := []deck.State{
		{Index: 1, Density: 1, Energy: 0},
		{Index: 2, Density: 2, Energy: 1, Geometry: deck.GeomRectangle, XMin: 0, XMax: 10, YMin: 0, YMax: 10},
		{Index: 3, Density: 3, Energy: 2, Geometry: deck.GeomRectangle, XMin: 4, XMax: 6, YMin: 4, YMax: 6},
	}
	if err := Paint(states, den, en); err != nil {
		t.Fatal(err)
	}
	if den.At(5, 5) != 3 {
		t.Error("later state must overwrite earlier")
	}
	if den.At(1, 1) != 2 {
		t.Error("earlier state must survive outside later geometry")
	}
}

func TestPaintSubGridMatchesGlobal(t *testing.T) {
	// Painting a sub-grid must produce exactly the global painting
	// restricted to the extent — the distributed initialisation path.
	d := CrookedPipeDeck(40, 40)
	gg := grid.MustGrid2D(40, 40, 2, d.XMin, d.XMax, d.YMin, d.YMax)
	gden := grid.NewField2D(gg)
	gen := grid.NewField2D(gg)
	if err := Paint(d.States, gden, gen); err != nil {
		t.Fatal(err)
	}
	sub, err := gg.Sub(10, 30, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	sden := grid.NewField2D(sub)
	sen := grid.NewField2D(sub)
	if err := Paint(d.States, sden, sen); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < sub.NY; k++ {
		for j := 0; j < sub.NX; j++ {
			if sden.At(j, k) != gden.At(10+j, 20+k) {
				t.Fatalf("sub-grid density differs at (%d,%d)", j, k)
			}
			if sen.At(j, k) != gen.At(10+j, 20+k) {
				t.Fatalf("sub-grid energy differs at (%d,%d)", j, k)
			}
		}
	}
}

func TestEnergyToURoundTrip(t *testing.T) {
	g := grid.MustGrid2D(6, 6, 1, 0, 1, 0, 1)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	u := grid.NewField2D(g)
	out := grid.NewField2D(g)
	for k := 0; k < 6; k++ {
		for j := 0; j < 6; j++ {
			den.Set(j, k, float64(j+1))
			en.Set(j, k, float64(k+1)*0.25)
		}
	}
	EnergyToU(den, en, u)
	if u.At(2, 3) != 3*1.0 {
		t.Errorf("u(2,3) = %v, want 3", u.At(2, 3))
	}
	UToEnergy(den, u, out)
	if out.MaxDiff(en) > 1e-15 {
		t.Error("round trip broke energy")
	}
}

func TestCrookedPipeDeckStructure(t *testing.T) {
	d := CrookedPipeDeck(100, 100)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Steps() != 375 {
		t.Errorf("steps = %d, want 375 (15 µs at 0.04 µs)", d.Steps())
	}
	if d.Coefficient != "density" {
		t.Error("crooked pipe uses TeaLeaf's density mode (face coefficient ∝ 1/ρ: low-density pipe conducts)")
	}
	g := grid.MustGrid2D(100, 100, 2, d.XMin, d.XMax, d.YMin, d.YMax)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	if err := Paint(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	// The pipe must connect the left edge to the right edge: walk a flood
	// fill over low-density cells from the inlet.
	visited := make(map[[2]int]bool)
	stack := [][2]int{}
	for k := 0; k < 100; k++ {
		if den.At(0, k) == PipeDensity {
			stack = append(stack, [2]int{0, k})
		}
	}
	if len(stack) == 0 {
		t.Fatal("no pipe cells on the left edge")
	}
	reachedRight := false
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[c] {
			continue
		}
		visited[c] = true
		if c[0] == 99 {
			reachedRight = true
			break
		}
		for _, d4 := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nj, nk := c[0]+d4[0], c[1]+d4[1]
			if nj >= 0 && nj < 100 && nk >= 0 && nk < 100 &&
				!visited[[2]int{nj, nk}] && den.At(nj, nk) == PipeDensity {
				stack = append(stack, [2]int{nj, nk})
			}
		}
	}
	if !reachedRight {
		t.Error("pipe does not traverse the domain")
	}
	// There must be a hot source region.
	_, hi := en.MinMaxInterior()
	if hi != SourceEnergy {
		t.Errorf("max energy = %v, want source %v", hi, SourceEnergy)
	}
	// The pipe must actually kink: some pipe cells far from the inlet row.
	kinked := false
	for c := range visited {
		if math.Abs(float64(c[1])-70) > 15 { // inlet row is k≈70
			kinked = true
			break
		}
	}
	if !kinked {
		t.Error("pipe has no kinks")
	}
}

func TestBenchmarkDeck(t *testing.T) {
	d := BenchmarkDeck(16)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.States) != 2 {
		t.Errorf("states = %d", len(d.States))
	}
	if d.States[1].Density >= d.States[0].Density {
		t.Error("hot region must be low density")
	}
}
