// Package problem builds TeaLeaf initial conditions: it paints input-deck
// states onto density/energy fields and provides canned generators for the
// paper's workloads — most importantly the "crooked pipe" heat-diffusion
// test of §V-B, a dense low-conduction material crossed by a kinked pipe of
// low-density, high-conduction material with a heat source at its inlet.
package problem

import (
	"fmt"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

// Paint applies the deck states to the interior cells of density and
// energy. State 1 (no geometry) is the background; subsequent states
// overwrite cells whose centres fall inside their shape. Because sub-grids
// carry true physical coordinates, the same call paints a rank-local grid
// correctly with no offset bookkeeping.
func Paint(states []deck.State, density, energy *grid.Field2D) error {
	if len(states) == 0 {
		return fmt.Errorf("problem: no states to paint")
	}
	if states[0].Geometry != deck.GeomNone {
		return fmt.Errorf("problem: first state must be the background (no geometry)")
	}
	g := density.Grid
	bg := states[0]
	density.FillBounds(g.Interior(), bg.Density)
	energy.FillBounds(g.Interior(), bg.Energy)

	for _, st := range states[1:] {
		for k := 0; k < g.NY; k++ {
			cy := g.CellCenterY(k)
			for j := 0; j < g.NX; j++ {
				cx := g.CellCenterX(j)
				if inside(st, cx, cy, g, j, k) {
					density.Set(j, k, st.Density)
					energy.Set(j, k, st.Energy)
				}
			}
		}
	}
	return nil
}

func inside(st deck.State, cx, cy float64, g *grid.Grid2D, j, k int) bool {
	switch st.Geometry {
	case deck.GeomRectangle:
		return cx >= st.XMin && cx <= st.XMax && cy >= st.YMin && cy <= st.YMax
	case deck.GeomCircle:
		dx, dy := cx-st.CX, cy-st.CY
		return dx*dx+dy*dy <= st.Radius*st.Radius
	case deck.GeomPoint:
		return st.CX >= g.VertexX(j) && st.CX < g.VertexX(j+1) &&
			st.CY >= g.VertexY(k) && st.CY < g.VertexY(k+1)
	case deck.GeomNone:
		return true
	}
	return false
}

// EnergyToU computes the solve variable u = density · energy (TeaLeaf's
// tea_leaf_init: the conserved quantity is energy density) over the
// interior.
func EnergyToU(density, energy, u *grid.Field2D) {
	g := density.Grid
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			u.Set(j, k, density.At(j, k)*energy.At(j, k))
		}
	}
}

// UToEnergy recovers energy = u / density after a solve.
func UToEnergy(density, u, energy *grid.Field2D) {
	g := density.Grid
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			energy.Set(j, k, u.At(j, k)/density.At(j, k))
		}
	}
}

// Domain extents of the canned problems. The crooked-pipe geometry
// matches the paper's Fig. 3 proportions; the physical units are chosen so
// the implicit operator's stiffness (rx = Δt/Δx²) at 4000² is in the same
// regime as the paper's reported run times imply.
const (
	DomainSize = 100.0
	// PipeDensity is the low-density pipe material. Under TeaLeaf's
	// standard "density" coefficient mode the face conduction is the
	// mean of 1/ρ, so the pipe conducts WallDensity/PipeDensity = 1000×
	// faster than the wall.
	PipeDensity = 0.01
	// WallDensity is the dense, low-conduction background.
	WallDensity = 10.0
	// ColdEnergy is the initial specific energy of the cold material.
	ColdEnergy = 1e-4
	// SourceEnergy is the hot inlet's specific energy.
	SourceEnergy = 25.0
	// PipeWidth is the pipe's cross-section (1/10 of the domain side,
	// matching the Fig. 3 aspect).
	PipeWidth = 10.0
)

// CrookedPipeDeck builds the §V-B strong-scaling workload at nx × ny
// cells: a dense cold wall material, a kinked low-density pipe traversing
// the domain left to right, and a hot source at the pipe inlet. The mesh
// resolution is the only parameter — the paper sweeps it up to 4000×4000
// (Fig. 4) and fixes 4000×4000 for the scaling studies (Figs. 5–8).
func CrookedPipeDeck(nx, ny int) *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = nx, ny
	d.XMin, d.XMax = 0, DomainSize
	d.YMin, d.YMax = 0, DomainSize
	d.InitialTimestep = 0.04
	d.EndTime = 15.0
	d.EndStep = 375
	d.Solver = "ppcg"
	// TeaLeaf's "density" mode: face coefficient = mean of 1/ρ — the
	// low-density pipe is the fast conduction path (§V-B).
	d.Coefficient = "density"
	d.Eps = 1e-10

	w := PipeWidth / 2 // half-width
	const (
		inY  = 0.7 * DomainSize // inlet elevation
		midY = 0.3 * DomainSize // lower leg elevation
		x1   = 0.3 * DomainSize // first kink
		x2   = 0.7 * DomainSize // second kink
	)
	rect := func(idx int, den, en, xmin, xmax, ymin, ymax float64) deck.State {
		return deck.State{
			Index: idx, Density: den, Energy: en,
			Geometry: deck.GeomRectangle,
			XMin:     xmin, XMax: xmax, YMin: ymin, YMax: ymax,
		}
	}
	d.States = []deck.State{
		{Index: 1, Density: WallDensity, Energy: ColdEnergy},
		// The kinked pipe: left inlet leg, down-leg, bottom leg, up-leg,
		// right outlet leg. Segments overlap at the elbows.
		rect(2, PipeDensity, ColdEnergy, 0, x1+w, inY-w, inY+w),
		rect(3, PipeDensity, ColdEnergy, x1-w, x1+w, midY-w, inY+w),
		rect(4, PipeDensity, ColdEnergy, x1-w, x2+w, midY-w, midY+w),
		rect(5, PipeDensity, ColdEnergy, x2-w, x2+w, midY-w, inY+w),
		rect(6, PipeDensity, ColdEnergy, x2-w, DomainSize, inY-w, inY+w),
		// Hot source plugging the inlet.
		rect(7, PipeDensity, SourceEnergy, 0, 0.05*DomainSize, inY-w, inY+w),
	}
	return d
}

// StiffDeck is the near-steady stiff benchmark: uniform unit density on
// a unit domain with Δt = 10, so the per-step operator A = I + Δt·L has
// Δt·λ₂(L) ≫ 1 and the smooth low-energy subdomain modes are genuine
// spectral outliers. This is the regime where subdomain deflation
// (tl_use_deflation; §VII future work) pays — deflated CG needs
// substantially fewer iterations than plain CG here, while on the
// production-Δt decks the low modes sit at 1+ε and deflation is neutral.
func StiffDeck(n int) *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = n, n
	d.XMin, d.XMax = 0, 1
	d.YMin, d.YMax = 0, 1
	d.InitialTimestep = 10
	d.EndStep = 2
	d.EndTime = 20
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-9
	d.States = []deck.State{
		{Index: 1, Density: 1, Energy: 0.1},
		// Hot corner quarter: a right-hand side rich in the smooth modes
		// deflation removes.
		{Index: 2, Density: 1, Energy: 1, Geometry: deck.GeomRectangle,
			XMin: 0, XMax: 0.25, YMin: 0, YMax: 0.25},
	}
	return d
}

// BenchmarkDeck is the stock tea.in two-state benchmark (the tea_bm
// series): background of dense cold material with one hot low-density
// rectangle in the corner. Useful as a quick-running validation problem.
func BenchmarkDeck(n int) *deck.Deck {
	d := deck.Default()
	d.XCells, d.YCells = n, n
	// The stock benchmark uses the original 10×10 domain (stiffer than
	// the rescaled crooked pipe — it exists to exercise solvers hard at
	// small mesh sizes).
	d.XMin, d.XMax = 0, 10
	d.YMin, d.YMax = 0, 10
	d.InitialTimestep = 0.004
	d.EndTime = 0.02
	d.EndStep = 5
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-10
	d.States = []deck.State{
		{Index: 1, Density: 100, Energy: 0.0001},
		{Index: 2, Density: 0.1, Energy: 25, Geometry: deck.GeomRectangle,
			XMin: 0, XMax: 1, YMin: 1, YMax: 3},
	}
	return d
}
