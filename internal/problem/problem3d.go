package problem

import (
	"fmt"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

// Paint3D applies the deck states to the interior cells of 3D density and
// energy fields. State 1 (no geometry) is the background; subsequent
// states overwrite cells whose centres fall inside their shape. A
// rectangle state is an axis-aligned box; a state with an empty z-range
// spans the whole domain in z, so 2D state definitions extrude naturally.
// A circle state is a sphere around (CX, CY, CZ). Because sub-grids carry
// true physical coordinates, the same call paints a rank-local grid
// correctly with no offset bookkeeping.
func Paint3D(states []deck.State, density, energy *grid.Field3D) error {
	if len(states) == 0 {
		return fmt.Errorf("problem: no states to paint")
	}
	if states[0].Geometry != deck.GeomNone {
		return fmt.Errorf("problem: first state must be the background (no geometry)")
	}
	g := density.Grid
	bg := states[0]
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				density.Set(i, j, k, bg.Density)
				energy.Set(i, j, k, bg.Energy)
			}
		}
	}
	for _, st := range states[1:] {
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					cx, cy, cz := g.CellCenter(i, j, k)
					if inside3D(st, cx, cy, cz, g, i, j, k) {
						density.Set(i, j, k, st.Density)
						energy.Set(i, j, k, st.Energy)
					}
				}
			}
		}
	}
	return nil
}

func inside3D(st deck.State, cx, cy, cz float64, g *grid.Grid3D, i, j, k int) bool {
	switch st.Geometry {
	case deck.GeomRectangle:
		if cx < st.XMin || cx > st.XMax || cy < st.YMin || cy > st.YMax {
			return false
		}
		if st.ZMax > st.ZMin {
			return cz >= st.ZMin && cz <= st.ZMax
		}
		return true // empty z-range: the state extrudes through z
	case deck.GeomCircle:
		dx, dy, dz := cx-st.CX, cy-st.CY, cz-st.CZ
		return dx*dx+dy*dy+dz*dz <= st.Radius*st.Radius
	case deck.GeomPoint:
		return st.CX >= g.VertexX(i) && st.CX < g.VertexX(i+1) &&
			st.CY >= g.VertexY(j) && st.CY < g.VertexY(j+1) &&
			st.CZ >= g.VertexZ(k) && st.CZ < g.VertexZ(k+1)
	case deck.GeomNone:
		return true
	}
	return false
}

// EnergyToU3D computes the solve variable u = density · energy over the
// interior.
func EnergyToU3D(density, energy, u *grid.Field3D) {
	g := density.Grid
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				u.Set(i, j, k, density.At(i, j, k)*energy.At(i, j, k))
			}
		}
	}
}

// UToEnergy3D recovers energy = u / density after a solve.
func UToEnergy3D(density, u, energy *grid.Field3D) {
	g := density.Grid
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				energy.Set(i, j, k, u.At(i, j, k)/density.At(i, j, k))
			}
		}
	}
}

// StiffDeck3D is the 3D twin of StiffDeck: uniform unit density on the
// unit cube with Δt = 10, putting the per-step operator A = I + Δt·L deep
// in the near-steady regime where the smooth subdomain modes are genuine
// spectral outliers and deflation pays. The hot corner octant makes the
// right-hand side rich in exactly those modes.
func StiffDeck3D(n int) *deck.Deck {
	d := deck.Default()
	d.Dims = 3
	d.XCells, d.YCells, d.ZCells = n, n, n
	d.XMin, d.XMax = 0, 1
	d.YMin, d.YMax = 0, 1
	d.ZMin, d.ZMax = 0, 1
	d.InitialTimestep = 10
	d.EndStep = 2
	d.EndTime = 20
	d.Solver = "cg"
	d.Coefficient = "density"
	d.Eps = 1e-9
	d.States = []deck.State{
		{Index: 1, Density: 1, Energy: 0.1},
		{Index: 2, Density: 1, Energy: 1, Geometry: deck.GeomRectangle,
			XMin: 0, XMax: 0.25, YMin: 0, YMax: 0.25, ZMin: 0, ZMax: 0.25},
	}
	return d
}

// BenchmarkDeck3D is the 3D extension of the stock two-state benchmark: a
// dense cold background with one hot low-density box in the corner, on a
// 10×10×10 domain. The solver default is PPCG — the configuration the 3D
// scaling experiment sweeps.
func BenchmarkDeck3D(n int) *deck.Deck {
	d := deck.Default()
	d.Dims = 3
	d.XCells, d.YCells, d.ZCells = n, n, n
	d.XMin, d.XMax = 0, 10
	d.YMin, d.YMax = 0, 10
	d.ZMin, d.ZMax = 0, 10
	d.InitialTimestep = 0.004
	d.EndTime = 0.02
	d.EndStep = 5
	d.Solver = "ppcg"
	d.Precond = "jac_diag"
	d.Coefficient = "density"
	d.Eps = 1e-10
	d.States = []deck.State{
		{Index: 1, Density: 100, Energy: 0.0001},
		{Index: 2, Density: 0.1, Energy: 25, Geometry: deck.GeomRectangle,
			XMin: 0, XMax: 1, YMin: 1, YMax: 3, ZMin: 1, ZMax: 3},
	}
	return d
}
