package problem

import (
	"testing"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

// grid3ForDeck builds the full-domain 3D grid a deck describes.
func grid3ForDeck(t *testing.T, d *deck.Deck) *grid.Grid3D {
	t.Helper()
	g, err := grid.NewGrid3D(d.XCells, d.YCells, d.ZCells, 2,
		d.XMin, d.XMax, d.YMin, d.YMax, d.ZMin, d.ZMax)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPaint3DBackgroundAndBox(t *testing.T) {
	d := BenchmarkDeck3D(10)
	g := grid3ForDeck(t, d)
	den := grid.NewField3D(g)
	en := grid.NewField3D(g)
	if err := Paint3D(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	// Background cell.
	if den.At(9, 9, 9) != 100 || en.At(9, 9, 9) != 0.0001 {
		t.Error("background not painted")
	}
	// Inside the hot box (cell centre (0.5,1.5,1.5) at n=10 on [0,10]³ is
	// cell (0,1,1)).
	if den.At(0, 1, 1) != 0.1 || en.At(0, 1, 1) != 25 {
		t.Errorf("hot box not painted: den=%v en=%v", den.At(0, 1, 1), en.At(0, 1, 1))
	}
	// Outside the box in z only.
	if den.At(0, 1, 5) != 100 {
		t.Error("box must be bounded in z")
	}
}

func TestPaint3DExtrudesEmptyZRange(t *testing.T) {
	d := BenchmarkDeck3D(8)
	d.States[1].ZMin, d.States[1].ZMax = 0, 0 // empty: extrude through z
	g := grid3ForDeck(t, d)
	den := grid.NewField3D(g)
	en := grid.NewField3D(g)
	if err := Paint3D(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < g.NZ; k++ {
		if den.At(0, 1, k) != 0.1 {
			t.Fatalf("extruded state missing at z=%d", k)
		}
	}
}

func TestPaint3DSphere(t *testing.T) {
	d := BenchmarkDeck3D(10)
	d.States[1] = deck.State{Index: 2, Density: 0.1, Energy: 25,
		Geometry: deck.GeomCircle, CX: 5, CY: 5, CZ: 5, Radius: 2}
	g := grid3ForDeck(t, d)
	den := grid.NewField3D(g)
	en := grid.NewField3D(g)
	if err := Paint3D(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	if den.At(4, 4, 4) != 0.1 {
		t.Error("sphere centre cell not painted")
	}
	if den.At(0, 0, 0) != 100 {
		t.Error("corner must stay background")
	}
}

func TestEnergyURoundTrip3D(t *testing.T) {
	d := BenchmarkDeck3D(6)
	g := grid3ForDeck(t, d)
	den := grid.NewField3D(g)
	en := grid.NewField3D(g)
	if err := Paint3D(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	u := grid.NewField3D(g)
	back := grid.NewField3D(g)
	EnergyToU3D(den, en, u)
	UToEnergy3D(den, u, back)
	if back.MaxDiff(en) > 1e-14 {
		t.Error("energy↔u round trip broken")
	}
}
