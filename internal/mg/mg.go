// Package mg implements a geometric multigrid V-cycle for the TeaLeaf
// operator, standing in for the PETSc CG + Hypre BoomerAMG baseline of the
// paper's Fig. 7. On TeaLeaf's regular 5-point grids, BoomerAMG's
// aggressive coarsening degenerates to geometric semicoarsening, so a
// geometric V-cycle reproduces the baseline's defining behaviour: a small,
// mesh-independent iteration count bought with an expensive, deeply
// coarsened hierarchy whose coarse levels are communication-bound at
// scale — exactly the strong-scaling failure mode the paper contrasts
// CPPCG against.
//
// The hierarchy is serial (the paper's baseline data is measured at small
// scale and the strong-scaling model prices the V-cycle's communication
// structure); transfers are cell-centred full-weighting restriction with
// piecewise-constant prolongation (adjoint up to scaling, keeping the
// preconditioner SPD), and the smoother is damped Jacobi.
package mg

import (
	"errors"
	"fmt"
	"math"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
	"tealeaf/internal/stencil"
)

// Options configures the hierarchy.
type Options struct {
	// MinSize stops coarsening when either dimension would drop below it
	// (default 8).
	MinSize int
	// PreSmooth, PostSmooth are the damped-Jacobi sweep counts (default 2).
	PreSmooth, PostSmooth int
	// Omega is the Jacobi damping factor (default 0.8).
	Omega float64
	// CoarseIters bounds the coarsest-level CG solve (default 200).
	CoarseIters int
}

func (o Options) withDefaults() Options {
	if o.MinSize <= 0 {
		o.MinSize = 8
	}
	if o.PreSmooth <= 0 {
		o.PreSmooth = 2
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 2
	}
	if o.Omega <= 0 {
		o.Omega = 0.8
	}
	if o.CoarseIters <= 0 {
		o.CoarseIters = 200
	}
	return o
}

type level struct {
	g    *grid.Grid2D
	op   *stencil.Operator2D
	diag *grid.Field2D
	// scratch fields
	z, r, res, tmp *grid.Field2D
}

// Hierarchy is a multigrid preconditioner/solver for one fine-level
// operator. It satisfies the precond.Preconditioner interface shape, so it
// plugs straight into solver.Options.Precond.
type Hierarchy struct {
	opts   Options
	pool   *par.Pool
	levels []*level
	// SetupWork counts cell visits spent building the hierarchy; the
	// scaling model uses it for the baseline's setup-cost term.
	SetupWork int64
}

// Build constructs the hierarchy from the fine-level density. Arguments
// mirror stencil.BuildOperator2D; the fine density must have valid halos.
func Build(pool *par.Pool, density *grid.Field2D, dt float64, coef stencil.Coefficient, o Options) (*Hierarchy, error) {
	o = o.withDefaults()
	if pool == nil {
		pool = par.Serial
	}
	h := &Hierarchy{opts: o, pool: pool}

	den := density
	g := density.Grid
	for {
		op, err := stencil.BuildOperator2D(pool, den, dt, coef, stencil.AllPhysical)
		if err != nil {
			return nil, err
		}
		lv := &level{
			g: g, op: op,
			diag: grid.NewField2D(g),
			z:    grid.NewField2D(g), r: grid.NewField2D(g),
			res: grid.NewField2D(g), tmp: grid.NewField2D(g),
		}
		op.Diagonal(pool, g.Interior(), lv.diag)
		h.levels = append(h.levels, lv)
		h.SetupWork += int64(g.Cells())

		if g.NX%2 != 0 || g.NY%2 != 0 || g.NX/2 < o.MinSize || g.NY/2 < o.MinSize {
			break
		}
		// Coarsen the density by 2×2 cell averaging and rebuild.
		cg, err := grid.NewGrid2D(g.NX/2, g.NY/2, g.Halo, g.XMin, g.XMax, g.YMin, g.YMax)
		if err != nil {
			return nil, err
		}
		cden := grid.NewField2D(cg)
		for k := 0; k < cg.NY; k++ {
			for j := 0; j < cg.NX; j++ {
				avg := 0.25 * (den.At(2*j, 2*k) + den.At(2*j+1, 2*k) +
					den.At(2*j, 2*k+1) + den.At(2*j+1, 2*k+1))
				cden.Set(j, k, avg)
			}
		}
		cden.ReflectHalos(cg.Halo)
		den = cden
		g = cg
	}
	if len(h.levels) == 0 {
		return nil, errors.New("mg: no levels built")
	}
	return h, nil
}

// Levels returns the hierarchy depth.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// LevelCells returns the interior cell count of each level, fine to coarse
// (the scaling model prices per-level work and communication from this).
func (h *Hierarchy) LevelCells() []int {
	out := make([]int, len(h.levels))
	for i, lv := range h.levels {
		out[i] = lv.g.Cells()
	}
	return out
}

// Name implements the preconditioner interface.
func (h *Hierarchy) Name() string { return "mg_vcycle" }

// Apply implements the preconditioner interface: z = V-cycle(r). The
// bounds argument must be the fine grid's interior (multigrid transfers
// are whole-grid operations); anything else is a programming error.
func (h *Hierarchy) Apply(pool *par.Pool, b grid.Bounds, r, z *grid.Field2D) {
	if b != h.levels[0].g.Interior() {
		panic(fmt.Sprintf("mg: Apply bounds %v must be the fine interior %v", b, h.levels[0].g.Interior()))
	}
	h.levels[0].r.CopyFrom(r)
	h.vcycle(0)
	z.CopyFrom(h.levels[0].z)
}

// vcycle solves levels[l].op · z = levels[l].r approximately into
// levels[l].z.
func (h *Hierarchy) vcycle(l int) {
	lv := h.levels[l]
	in := lv.g.Interior()
	fillZero(lv.z, in)

	if l == len(h.levels)-1 {
		h.coarseSolve(lv)
		return
	}
	for s := 0; s < h.opts.PreSmooth; s++ {
		h.smooth(lv)
	}
	// res = r - A z.
	lv.z.ReflectHalos(1)
	lv.op.Residual(h.pool, in, lv.z, lv.r, lv.res)

	// Restrict to the coarse level.
	clv := h.levels[l+1]
	restrictFW(lv.res, clv.r)
	h.vcycle(l + 1)
	// Prolong and correct.
	prolongPC(clv.z, lv.tmp)
	addInto(lv.z, lv.tmp, in)

	for s := 0; s < h.opts.PostSmooth; s++ {
		h.smooth(lv)
	}
}

// smooth performs one damped-Jacobi sweep z ← z + ω D⁻¹ (r − A z).
func (h *Hierarchy) smooth(lv *level) {
	in := lv.g.Interior()
	lv.z.ReflectHalos(1)
	lv.op.Residual(h.pool, in, lv.z, lv.r, lv.res)
	omega := h.opts.Omega
	g := lv.g
	for k := 0; k < g.NY; k++ {
		base := g.Index(0, k)
		for j := 0; j < g.NX; j++ {
			lv.z.Data[base+j] += omega * lv.res.Data[base+j] / lv.diag.Data[base+j]
		}
	}
}

// coarseSolve runs plain CG on the coarsest level (small, so cheap) to a
// fixed tight tolerance.
func (h *Hierarchy) coarseSolve(lv *level) {
	in := lv.g.Interior()
	g := lv.g
	r := lv.res
	r.CopyFrom(lv.r) // z = 0 → residual is r
	p := lv.tmp.Clone()
	p.CopyFrom(r)
	w := grid.NewField2D(g)
	dot := func(a, b *grid.Field2D) float64 {
		var s float64
		for k := 0; k < g.NY; k++ {
			base := g.Index(0, k)
			for j := 0; j < g.NX; j++ {
				s += a.Data[base+j] * b.Data[base+j]
			}
		}
		return s
	}
	rr := dot(r, r)
	rr0 := rr
	if rr0 == 0 {
		return
	}
	for it := 0; it < h.opts.CoarseIters; it++ {
		p.ReflectHalos(1)
		lv.op.Apply(h.pool, in, p, w)
		pw := dot(p, w)
		if pw == 0 {
			break
		}
		alpha := rr / pw
		for k := 0; k < g.NY; k++ {
			base := g.Index(0, k)
			for j := 0; j < g.NX; j++ {
				lv.z.Data[base+j] += alpha * p.Data[base+j]
				r.Data[base+j] -= alpha * w.Data[base+j]
			}
		}
		rrNew := dot(r, r)
		if rrNew <= 1e-24*rr0 {
			break
		}
		beta := rrNew / rr
		rr = rrNew
		for k := 0; k < g.NY; k++ {
			base := g.Index(0, k)
			for j := 0; j < g.NX; j++ {
				p.Data[base+j] = r.Data[base+j] + beta*p.Data[base+j]
			}
		}
	}
}

// restrictFW computes the cell-centred full-weighting restriction: each
// coarse cell averages its four fine children.
func restrictFW(fine, coarse *grid.Field2D) {
	cg := coarse.Grid
	for k := 0; k < cg.NY; k++ {
		for j := 0; j < cg.NX; j++ {
			coarse.Set(j, k, 0.25*(fine.At(2*j, 2*k)+fine.At(2*j+1, 2*k)+
				fine.At(2*j, 2*k+1)+fine.At(2*j+1, 2*k+1)))
		}
	}
}

// prolongPC is piecewise-constant prolongation: each fine child inherits
// its coarse parent's value.
func prolongPC(coarse, fine *grid.Field2D) {
	cg := coarse.Grid
	for k := 0; k < cg.NY; k++ {
		for j := 0; j < cg.NX; j++ {
			v := coarse.At(j, k)
			fine.Set(2*j, 2*k, v)
			fine.Set(2*j+1, 2*k, v)
			fine.Set(2*j, 2*k+1, v)
			fine.Set(2*j+1, 2*k+1, v)
		}
	}
}

func fillZero(f *grid.Field2D, b grid.Bounds) {
	f.Zero() // halos too: smoothers reflect from clean state
	_ = b
}

func addInto(dst, src *grid.Field2D, b grid.Bounds) {
	g := dst.Grid
	for k := b.Y0; k < b.Y1; k++ {
		base := g.Index(0, k)
		for j := b.X0; j < b.X1; j++ {
			dst.Data[base+j] += src.Data[base+j]
		}
	}
}

// SolveMG iterates V-cycles as a stand-alone solver until the relative
// residual meets tol, returning (iterations, final relative residual,
// converged).
func (h *Hierarchy) SolveMG(u, rhs *grid.Field2D, tol float64, maxIters int) (int, float64, bool) {
	lv := h.levels[0]
	in := lv.g.Interior()
	r := grid.NewField2D(lv.g)
	u.ReflectHalos(1)
	lv.op.Residual(h.pool, in, u, rhs, r)
	norm0 := math.Sqrt(dotInterior(r))
	if norm0 == 0 {
		return 0, 0, true
	}
	for it := 1; it <= maxIters; it++ {
		lv.r.CopyFrom(r)
		h.vcycle(0)
		addInto(u, lv.z, in)
		u.ReflectHalos(1)
		lv.op.Residual(h.pool, in, u, rhs, r)
		rel := math.Sqrt(dotInterior(r)) / norm0
		if rel <= tol {
			return it, rel, true
		}
	}
	lv.op.Residual(h.pool, in, u, rhs, r)
	return maxIters, math.Sqrt(dotInterior(r)) / norm0, false
}

func dotInterior(f *grid.Field2D) float64 {
	g := f.Grid
	var s float64
	for k := 0; k < g.NY; k++ {
		base := g.Index(0, k)
		for j := 0; j < g.NX; j++ {
			v := f.Data[base+j]
			s += v * v
		}
	}
	return s
}
