package mg

import (
	"math"
	"math/rand"
	"testing"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
	"tealeaf/internal/precond"
	"tealeaf/internal/solver"
	"tealeaf/internal/stencil"
)

func buildDensity(n int, seed int64) *grid.Field2D {
	g := grid.MustGrid2D(n, n, 2, 0, 10, 0, 10)
	d := grid.NewField2D(g)
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			d.Set(j, k, 1+rng.Float64()*4)
		}
	}
	d.ReflectHalos(g.Halo)
	return d
}

func buildRHS(g *grid.Grid2D) *grid.Field2D {
	rhs := grid.NewField2D(g)
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			v := 0.1
			if j < g.NX/3 && k > g.NY/2 {
				v = 5
			}
			rhs.Set(j, k, v)
		}
	}
	return rhs
}

func TestBuildHierarchyDepth(t *testing.T) {
	den := buildDensity(64, 1)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{MinSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 64 → 32 → 16 → 8: four levels.
	if h.Levels() != 4 {
		t.Errorf("levels = %d, want 4", h.Levels())
	}
	cells := h.LevelCells()
	if cells[0] != 64*64 || cells[3] != 8*8 {
		t.Errorf("level cells = %v", cells)
	}
	if h.SetupWork <= int64(64*64) {
		t.Error("setup work must include coarse levels")
	}
	if h.Name() != "mg_vcycle" {
		t.Error("name")
	}
}

func TestBuildOddSizeStopsCoarsening(t *testing.T) {
	den := buildDensity(48, 2) // 48 → 24 → 12 → stop (12/2=6 < 8)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{MinSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Errorf("levels = %d, want 3", h.Levels())
	}
	// Odd grid: single level.
	den2 := buildDensity(31, 3)
	h2, err := Build(par.Serial, den2, 0.04, stencil.Conductivity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Levels() != 1 {
		t.Errorf("odd grid levels = %d, want 1", h2.Levels())
	}
}

func TestTransfersAdjoint(t *testing.T) {
	// <R f, c>_coarse · 4 == <f, P c>_fine  (R = ¼ Pᵀ for PC/FW pair).
	fg := grid.MustGrid2D(16, 16, 1, 0, 1, 0, 1)
	cgr := grid.MustGrid2D(8, 8, 1, 0, 1, 0, 1)
	rng := rand.New(rand.NewSource(4))
	f := grid.NewField2D(fg)
	c := grid.NewField2D(cgr)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}
	rf := grid.NewField2D(cgr)
	restrictFW(f, rf)
	pc := grid.NewField2D(fg)
	prolongPC(c, pc)
	var lhs, rhs float64
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			lhs += rf.At(j, k) * c.At(j, k)
		}
	}
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			rhs += f.At(j, k) * pc.At(j, k)
		}
	}
	if math.Abs(4*lhs-rhs) > 1e-10*math.Max(1, math.Abs(rhs)) {
		t.Errorf("transfers not adjoint: 4<Rf,c>=%v, <f,Pc>=%v", 4*lhs, rhs)
	}
}

func TestRestrictionPreservesConstants(t *testing.T) {
	fg := grid.MustGrid2D(8, 8, 1, 0, 1, 0, 1)
	cgr := grid.MustGrid2D(4, 4, 1, 0, 1, 0, 1)
	f := grid.NewField2D(fg)
	f.FillBounds(fg.Interior(), 3.5)
	c := grid.NewField2D(cgr)
	restrictFW(f, c)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			if c.At(j, k) != 3.5 {
				t.Fatalf("restriction broke constant at (%d,%d): %v", j, k, c.At(j, k))
			}
		}
	}
	// Prolongation too.
	f2 := grid.NewField2D(fg)
	prolongPC(c, f2)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			if f2.At(j, k) != 3.5 {
				t.Fatalf("prolongation broke constant")
			}
		}
	}
}

func TestSolveMGConverges(t *testing.T) {
	den := buildDensity(64, 5)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := den.Grid
	rhs := buildRHS(g)
	u := rhs.Clone()
	iters, rel, ok := h.SolveMG(u, rhs, 1e-10, 100)
	if !ok {
		t.Fatalf("MG did not converge: %d iters, rel %v", iters, rel)
	}
	if iters > 60 {
		t.Errorf("MG took %d V-cycles; expected mesh-independent fast convergence", iters)
	}
}

func TestMGIterationCountMeshIndependent(t *testing.T) {
	// The property that makes AMG-class methods win at low node counts:
	// V-cycle counts barely grow with mesh size (while CG grows ∝ n).
	counts := map[int]int{}
	for _, n := range []int{32, 64, 128} {
		den := buildDensity(n, int64(n))
		h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rhs := buildRHS(den.Grid)
		u := rhs.Clone()
		iters, _, ok := h.SolveMG(u, rhs, 1e-8, 200)
		if !ok {
			t.Fatalf("n=%d did not converge", n)
		}
		counts[n] = iters
	}
	if counts[128] > 3*counts[32]+5 {
		t.Errorf("V-cycle count grows too fast with mesh: %v", counts)
	}
}

func TestMGAsPreconditionerForCG(t *testing.T) {
	// The Fig. 7 baseline configuration: CG + MG preconditioner must
	// converge in far fewer iterations than plain CG.
	den := buildDensity(64, 7)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := den.Grid
	op, err := stencil.BuildOperator2D(par.Serial, den, 0.04, stencil.Conductivity, stencil.AllPhysical)
	if err != nil {
		t.Fatal(err)
	}
	rhs := buildRHS(g)

	var m precond.Preconditioner = h // interface satisfaction check
	pm := solver.Problem{Op: op, U: rhs.Clone(), RHS: rhs}
	resMG, err := solver.SolveCG(pm, solver.Options{Tol: 1e-10, Precond: m})
	if err != nil || !resMG.Converged {
		t.Fatalf("MG-PCG failed: %v %+v", err, resMG)
	}
	pp := solver.Problem{Op: op, U: rhs.Clone(), RHS: rhs}
	resCG, err := solver.SolveCG(pp, solver.Options{Tol: 1e-10})
	if err != nil || !resCG.Converged {
		t.Fatalf("CG failed: %v", err)
	}
	if resMG.Iterations*2 >= resCG.Iterations {
		t.Errorf("MG-PCG iterations %d not ≪ CG %d", resMG.Iterations, resCG.Iterations)
	}
	// Same answer.
	if d := pm.U.MaxDiff(pp.U); d > 1e-7 {
		t.Errorf("MG-PCG solution differs by %v", d)
	}
}

func TestApplyBoundsGuard(t *testing.T) {
	den := buildDensity(32, 8)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Apply with wrong bounds must panic")
		}
	}()
	r := grid.NewField2D(den.Grid)
	z := grid.NewField2D(den.Grid)
	h.Apply(par.Serial, grid.Bounds{X0: 0, X1: 4, Y0: 0, Y1: 4}, r, z)
}

func TestVCycleReducesResidual(t *testing.T) {
	den := buildDensity(64, 9)
	h, err := Build(par.Serial, den, 0.04, stencil.Conductivity, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := den.Grid
	rhs := buildRHS(g)
	u := grid.NewField2D(g)
	op := h.levels[0].op
	r := grid.NewField2D(g)
	op.Residual(par.Serial, g.Interior(), u, rhs, r)
	n0 := math.Sqrt(dotInterior(r))
	// One V-cycle.
	z := grid.NewField2D(g)
	h.Apply(par.Serial, g.Interior(), r, z)
	addInto(u, z, g.Interior())
	u.ReflectHalos(1)
	op.Residual(par.Serial, g.Interior(), u, rhs, r)
	n1 := math.Sqrt(dotInterior(r))
	if n1 >= 0.5*n0 {
		t.Errorf("one V-cycle only reduced residual %v -> %v", n0, n1)
	}
}
