// Package machine describes the three evaluation systems of the paper's
// Table I — Spruce (Xeon E5-2680v2 / SGI ICE-X), Piz Daint (K20x / Cray
// Aries) and Titan (K20x / Cray Gemini) — as analytic performance models.
//
// The models capture the five effects that shape the paper's
// strong-scaling curves:
//
//  1. memory-bandwidth-bound kernels (STREAM-rate compute time),
//  2. log(P)-latency global reductions (CG's scaling bottleneck, §III-A),
//  3. per-message halo-exchange latency versus payload bandwidth (what
//     the matrix-powers kernel trades against redundant compute),
//  4. fixed per-kernel launch overhead on GPUs (the time floor behind
//     Titan's plateau past ~1k nodes), and
//  5. a last-level-cache bandwidth bonus on CPUs (Spruce's super-linear
//     efficiency in Fig. 8).
//
// Parameter values are nominal for the 2015–2017 hardware; the *shape* of
// the curves, not absolute seconds, is what the reproduction targets.
package machine

import (
	"math"
	"os"
	"strconv"
	"strings"
)

// Device models one node's compute device for bandwidth-bound kernels.
type Device struct {
	Name string
	// StreamBW is the sustainable memory bandwidth in bytes/second.
	StreamBW float64
	// CacheBW is the effective bandwidth when the per-node working set
	// fits in CacheBytes (CPU LLC bonus); zero disables the cache model
	// (GPUs: the working sets of interest never fit in L2).
	CacheBW    float64
	CacheBytes float64
	// KernelLatency is the fixed overhead per kernel invocation: CUDA
	// launch latency on GPUs, parallel-region/barrier cost on CPUs.
	KernelLatency float64
	// HostTransferLatency/HostTransferBW model the PCIe hop GPU halo
	// data takes through host staging buffers (zero for CPUs).
	HostTransferLatency float64
	HostTransferBW      float64
}

// EffectiveBW returns the bandwidth for a working set of ws bytes, using
// a cache-hit-fraction blend: the fraction of the working set resident in
// the LLC is served at CacheBW, the rest at StreamBW. The blend is smooth
// in ws, so strong-scaling curves show the gradual super-linear region of
// Fig. 8 rather than a cliff.
func (d Device) EffectiveBW(ws float64) float64 {
	if d.CacheBW <= 0 || ws <= 0 {
		return d.StreamBW
	}
	f := d.CacheBytes / ws
	if f > 1 {
		f = 1
	}
	return 1 / ((1-f)/d.StreamBW + f/d.CacheBW)
}

// TileFor returns the tile edge lengths (tx, ty, tz) for a sweep over an
// nx×ny(×nz) box that co-walks `fields` float64 arrays per cell, sized
// so one tile's working set — including the one-cell stencil surround —
// fits in half the last-level cache (the other half is left to the
// other solver vectors and the next tile's prefetch stream). X is never
// split: full rows keep the hardware prefetchers streaming, and the
// repo's earlier column-tiling experiment (stencil.applyTileX) showed
// broken X streams cost more than residency gains. Pass nz <= 1 for 2D
// sweeps. A zero return for an axis means "do not split that axis"; an
// all-zero return means the whole sweep already fits and tiling is
// pointless.
func (d Device) TileFor(nx, ny, nz, fields int) (tx, ty, tz int) {
	budget := d.CacheBytes / 2
	if budget <= 0 {
		budget = 16e6 // no cache model: assume a modest 32 MB LLC
	}
	rowBytes := float64(fields) * 8 * float64(nx+2)
	if nz <= 1 {
		rows := int(budget/rowBytes) - 2
		if rows >= ny {
			return 0, 0, 0
		}
		if rows < 4 {
			rows = 4
		}
		return 0, rows, 0
	}
	planeBytes := rowBytes * float64(ny+2)
	planes := int(budget/planeBytes) - 2
	if planes >= nz {
		return 0, 0, 0
	}
	if planes >= 4 {
		return 0, 0, planes
	}
	// Full XY planes outgrow the cache: block Y too, under a thin Z slab.
	tz = 4
	rows := int(budget/(rowBytes*float64(tz+2))) - 2
	if rows >= ny {
		return 0, 0, tz
	}
	if rows < 4 {
		rows = 4
	}
	return 0, rows, tz
}

// ChainBandRows returns the band height (rows for 2D, planes for 3D —
// pass nz <= 1 for 2D) for a temporal-blocked deep-halo solve cycle
// that chains a depth-d iteration's sweeps per LLC band: the band plus
// the (depth+1)-deep trapezoid overlap the chained sweeps re-walk at
// each band boundary must fit in half the last-level cache, as TileFor
// budgets it. Returns 0 when the whole working set already fits (bands
// buy nothing), never less than 4 otherwise.
func (d Device) ChainBandRows(nx, ny, nz, fields, depth int) int {
	budget := d.CacheBytes / 2
	if budget <= 0 {
		budget = 16e6 // no cache model: assume a modest 32 MB LLC
	}
	rowBytes := float64(fields) * 8 * float64(nx+2)
	if nz <= 1 {
		rows := int(budget/rowBytes) - 2*(depth+1)
		if rows >= ny {
			return 0
		}
		if rows < 4 {
			rows = 4
		}
		return rows
	}
	planeBytes := rowBytes * float64(ny+2)
	planes := int(budget/planeBytes) - 2*(depth+1)
	if planes >= nz {
		return 0
	}
	if planes < 4 {
		planes = 4
	}
	return planes
}

// HostDevice describes the machine this process runs on, for tile-shape
// auto-tuning: the LLC size is read from sysfs where available (Linux),
// falling back to a nominal 32 MB; the bandwidth figures are nominal
// single-socket numbers and only matter for roofline annotations, not
// for the tile shape.
func HostDevice() Device {
	d := Device{
		Name:          "host",
		StreamBW:      20e9,
		CacheBW:       80e9,
		CacheBytes:    32e6,
		KernelLatency: 2e-6,
	}
	if b := sysfsLLCBytes(); b > 0 {
		d.CacheBytes = float64(b)
	}
	return d
}

// sysfsLLCBytes returns the size of the highest-level cpu0 cache listed
// in sysfs, or 0 when unreadable (non-Linux, restricted container).
func sysfsLLCBytes() int64 {
	var best int64
	bestLevel := -1
	for i := 0; i < 16; i++ {
		dir := "/sys/devices/system/cpu/cpu0/cache/index" + strconv.Itoa(i)
		lv, err := os.ReadFile(dir + "/level")
		if err != nil {
			break
		}
		level, _ := strconv.Atoi(strings.TrimSpace(string(lv)))
		raw, err := os.ReadFile(dir + "/size")
		if err != nil {
			continue
		}
		s := strings.TrimSpace(string(raw))
		mult := int64(1)
		switch {
		case strings.HasSuffix(s, "K"):
			mult, s = 1024, strings.TrimSuffix(s, "K")
		case strings.HasSuffix(s, "M"):
			mult, s = 1024*1024, strings.TrimSuffix(s, "M")
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			continue
		}
		if level > bestLevel {
			bestLevel, best = level, n*mult
		}
	}
	return best
}

// Network models the interconnect.
type Network struct {
	Name string
	// Latency is the small-message point-to-point latency in seconds.
	Latency float64
	// Bandwidth is the per-link payload bandwidth in bytes/second.
	Bandwidth float64
	// ReduceHop is the per-tree-level cost of an allreduce; total
	// allreduce latency is 2·log₂(P)·ReduceHop (reduce + broadcast).
	ReduceHop float64
	// CongestionPerLevel inflates point-to-point latency by
	// (1 + CongestionPerLevel·log₂(P)): the contention penalty of a
	// shared-torus network like Gemini versus Aries' adaptive dragonfly.
	CongestionPerLevel float64
}

// MessageTime returns the cost of one p2p message of n bytes at node
// count p.
func (net Network) MessageTime(n float64, p int) float64 {
	lat := net.Latency * (1 + net.CongestionPerLevel*log2(p))
	return lat + n/net.Bandwidth
}

// AllReduceTime returns the cost of one global reduction over p nodes.
// The latency scales logarithmically with node count — the "optimal
// implementation" assumption of §III-A.
func (net Network) AllReduceTime(p int) float64 {
	if p <= 1 {
		return 0
	}
	return 2 * log2(p) * net.ReduceHop * (1 + net.CongestionPerLevel*log2(p)/4)
}

func log2(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Log2(float64(p))
}

// Machine is one evaluation system: a device per node and the network
// between nodes.
type Machine struct {
	Name       string
	Device     Device
	Network    Network
	TotalNodes int
	// CoresPerNode is Table I's core accounting (CPU cores for Spruce;
	// CPU cores + SMX units for the XK7/XC30 nodes) and the flat-MPI
	// rank count per node.
	CoresPerNode int
	// DriverNote records Table I's driver/compiler column.
	DriverNote string
}

// Spruce is AWE's SGI ICE-X system: dual E5-2680v2 nodes, FDR InfiniBand
// (Table I: 40,080 cores, Intel 15.0).
func Spruce() Machine {
	return Machine{
		Name: "Spruce",
		Device: Device{
			Name:          "2x Intel E5-2680v2",
			StreamBW:      85e9,  // dual-socket DDR3-1866 STREAM triad
			CacheBW:       250e9, // aggregate LLC bandwidth
			CacheBytes:    50e6,  // 2 × 25 MB LLC
			KernelLatency: 1.5e-6,
		},
		Network: Network{
			Name:               "SGI ICE-X (FDR IB)",
			Latency:            1.6e-6,
			Bandwidth:          6.0e9,
			ReduceHop:          1.8e-6,
			CongestionPerLevel: 0.04,
		},
		TotalNodes:   2004,
		CoresPerNode: 20,
		DriverNote:   "Intel 15.0",
	}
}

// PizDaint is CSCS's Cray XC30: one K20x per node on the Aries dragonfly
// (Table I: 115,984 cores, driver 340.87 / CUDA 6.5; pre-P100 upgrade).
func PizDaint() Machine {
	return Machine{
		Name:         "Piz Daint",
		Device:       k20x(),
		Network:      aries(),
		TotalNodes:   5272,
		CoresPerNode: 22, // 16 CPU cores + 6 other units per XC30 node
		DriverNote:   "340.87 (CUDA 6.5)",
	}
}

// Titan is ORNL's Cray XK7: one K20x per node on the Gemini 3D torus
// (Table I: 560,640 cores, driver 352.101 / CUDA 7.5).
func Titan() Machine {
	return Machine{
		Name:         "Titan",
		Device:       k20x(),
		Network:      gemini(),
		TotalNodes:   18688,
		CoresPerNode: 30, // 16 CPU cores + 14 SMX units per XK7 node
		DriverNote:   "352.101 (CUDA 7.5)",
	}
}

func k20x() Device {
	return Device{
		Name:                "NVIDIA K20x",
		StreamBW:            180e9, // ~250 GB/s peak, ~180 sustained
		KernelLatency:       8e-6,  // CUDA launch + sync of that era
		HostTransferLatency: 9e-6,  // PCIe gen2 staging per message
		HostTransferBW:      6e9,
	}
}

func aries() Network {
	return Network{
		Name:               "Cray Aries",
		Latency:            1.3e-6,
		Bandwidth:          10e9,
		ReduceHop:          1.4e-6,
		CongestionPerLevel: 0.02, // adaptive-routed dragonfly: near-flat
	}
}

func gemini() Network {
	return Network{
		Name:               "Cray Gemini",
		Latency:            1.9e-6,
		Bandwidth:          4e9,
		ReduceHop:          3.2e-6,
		CongestionPerLevel: 0.22, // 3D torus: contention grows with scale
	}
}

// All returns the Table I systems in the paper's column order.
func All() []Machine {
	return []Machine{Spruce(), PizDaint(), Titan()}
}

// TotalCores reproduces Table I's "Total cores" row.
func (m Machine) TotalCores() int { return m.TotalNodes * m.CoresPerNode }
