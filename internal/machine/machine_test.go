package machine

import (
	"math"
	"testing"
)

func TestTableISystems(t *testing.T) {
	systems := All()
	if len(systems) != 3 {
		t.Fatalf("Table I has 3 systems, got %d", len(systems))
	}
	names := map[string]bool{}
	for _, m := range systems {
		names[m.Name] = true
		if m.Device.StreamBW <= 0 || m.Network.Latency <= 0 || m.Network.Bandwidth <= 0 {
			t.Errorf("%s has non-positive parameters", m.Name)
		}
		if m.TotalNodes <= 0 || m.CoresPerNode <= 0 {
			t.Errorf("%s has no size", m.Name)
		}
		if m.DriverNote == "" {
			t.Errorf("%s missing driver note", m.Name)
		}
	}
	for _, want := range []string{"Spruce", "Piz Daint", "Titan"} {
		if !names[want] {
			t.Errorf("missing system %q", want)
		}
	}
}

func TestTableICoreCounts(t *testing.T) {
	// Table I: Spruce 40,080; Piz Daint 115,984; Titan 560,640.
	if got := Spruce().TotalCores(); got != 40080 {
		t.Errorf("Spruce cores = %d, want 40080", got)
	}
	if got := PizDaint().TotalCores(); got != 115984 {
		t.Errorf("Piz Daint cores = %d, want 115984", got)
	}
	if got := Titan().TotalCores(); got != 560640 {
		t.Errorf("Titan cores = %d, want 560640", got)
	}
	if Titan().TotalNodes != 18688 {
		t.Errorf("Titan nodes = %d, want 18688 (XK7)", Titan().TotalNodes)
	}
}

func TestSameGPUDifferentNetwork(t *testing.T) {
	// §VI attributes the Titan/Piz Daint gap entirely to the network:
	// both machines must model the same device.
	td, pd := Titan().Device, PizDaint().Device
	if td != pd {
		t.Errorf("Titan and Piz Daint must share the K20x device model")
	}
	if Titan().Network.Name == PizDaint().Network.Name {
		t.Error("Titan and Piz Daint must have different networks")
	}
}

func TestEffectiveBWCacheModel(t *testing.T) {
	d := Spruce().Device
	// Deep in cache: full cache bandwidth.
	if got := d.EffectiveBW(1e6); math.Abs(got-d.CacheBW) > 1e-6*d.CacheBW {
		t.Errorf("in-cache BW = %v, want %v", got, d.CacheBW)
	}
	// Far out of cache: approaches stream bandwidth.
	if got := d.EffectiveBW(100 * d.CacheBytes); got > 1.1*d.StreamBW {
		t.Errorf("out-of-cache BW = %v, want ≈ %v", got, d.StreamBW)
	}
	// Monotone non-increasing in working set.
	prev := math.Inf(1)
	for ws := 1e6; ws < 1e10; ws *= 2 {
		bw := d.EffectiveBW(ws)
		if bw > prev+1 {
			t.Errorf("EffectiveBW not monotone at ws=%v: %v > %v", ws, bw, prev)
		}
		prev = bw
	}
	// GPUs have no cache bonus.
	if got := Titan().Device.EffectiveBW(1e3); got != Titan().Device.StreamBW {
		t.Errorf("GPU cache bonus must be disabled, got %v", got)
	}
}

func TestTileFor(t *testing.T) {
	d := Spruce().Device // 50 MB LLC, 25 MB tile budget
	// Small 2D mesh: everything fits, no tiling.
	if tx, ty, tz := d.TileFor(256, 256, 0, 5); tx != 0 || ty != 0 || tz != 0 {
		t.Errorf("small mesh tiled as (%d,%d,%d), want untiled", tx, ty, tz)
	}
	// 4096² at 5 fields/cell is ~671 MB: Y must split, X never.
	tx, ty, tz := d.TileFor(4096, 4096, 0, 5)
	if tx != 0 || tz != 0 {
		t.Errorf("2D tile must split only Y, got (%d,%d,%d)", tx, ty, tz)
	}
	if ty < 4 || ty >= 4096 {
		t.Errorf("ty = %d out of range", ty)
	}
	// The tile working set must fit the budget.
	if ws := float64(5*8*(4096+2)) * float64(ty+2); ws > d.CacheBytes/2 {
		t.Errorf("2D tile working set %.0f exceeds budget %.0f", ws, d.CacheBytes/2)
	}
	// 256×256×512 at 7 fields/cell: one XY plane is ~3.7 MB so a block
	// of Z planes fits the 25 MB budget; Y stays whole.
	tx, ty, tz = d.TileFor(256, 256, 512, 7)
	if tx != 0 || ty != 0 {
		t.Errorf("3D tile with fitting planes must split only Z, got (%d,%d,%d)", tx, ty, tz)
	}
	if tz < 1 || tz >= 512 {
		t.Errorf("tz = %d out of range", tz)
	}
	// 2048×2048×128 at 7 fields/cell: one plane is ~235 MB, so Y must
	// split too under a thin Z slab.
	tx, ty, tz = d.TileFor(2048, 2048, 128, 7)
	if tx != 0 {
		t.Errorf("X must never split, got tx=%d", tx)
	}
	if ty == 0 || tz == 0 {
		t.Errorf("fat planes must force a Y split under a Z slab, got (%d,%d,%d)", tx, ty, tz)
	}
	if ws := float64(7*8*(2048+2)) * float64(ty+2) * float64(tz+2); ws > 2*d.CacheBytes {
		t.Errorf("3D tile working set %.0f far exceeds budget", ws)
	}
	// Zero cache model falls back to a nominal budget rather than zero.
	if _, ty, _ := (Device{}).TileFor(8192, 8192, 0, 5); ty < 4 {
		t.Errorf("no-cache-model fallback gave ty=%d", ty)
	}
}

func TestChainBandRows(t *testing.T) {
	d := Spruce().Device // 50 MB LLC, 25 MB band budget
	// Small 2D mesh: everything fits, no banding.
	if r := d.ChainBandRows(256, 256, 0, 8, 3); r != 0 {
		t.Errorf("small mesh banded at %d rows, want 0", r)
	}
	// 4096² at 8 fields/cell outgrows the LLC: bands must split Y.
	r := d.ChainBandRows(4096, 4096, 0, 8, 3)
	if r < 4 || r >= 4096 {
		t.Errorf("2D band rows = %d out of range", r)
	}
	// Band plus trapezoid overlap must fit the budget.
	if ws := float64(8*8*(4096+2)) * float64(r+2*(3+1)); ws > d.CacheBytes/2 {
		t.Errorf("2D band working set %.0f exceeds budget %.0f", ws, d.CacheBytes/2)
	}
	// Deeper cycles re-walk a taller trapezoid, so bands shrink (or stay
	// at the floor) as depth grows.
	if r2 := d.ChainBandRows(4096, 4096, 0, 8, 8); r2 > r {
		t.Errorf("depth-8 band (%d rows) taller than depth-3 band (%d)", r2, r)
	}
	// 3D: 512³ at 8 fields/cell bands along Z.
	if p := d.ChainBandRows(512, 512, 512, 8, 2); p < 4 || p >= 512 {
		t.Errorf("3D band planes = %d out of range", p)
	}
	// Zero cache model falls back to a nominal budget rather than zero.
	if r := (Device{}).ChainBandRows(8192, 8192, 0, 8, 2); r < 4 {
		t.Errorf("no-cache-model fallback gave %d rows", r)
	}
}

func TestHostDevice(t *testing.T) {
	d := HostDevice()
	if d.CacheBytes <= 0 || d.StreamBW <= 0 {
		t.Fatalf("HostDevice must always report positive cache and bandwidth: %+v", d)
	}
}

func TestAllReduceScalesLogarithmically(t *testing.T) {
	net := aries()
	if net.AllReduceTime(1) != 0 {
		t.Error("single-rank allreduce is free")
	}
	t1k := net.AllReduceTime(1024)
	t2k := net.AllReduceTime(2048)
	if t2k <= t1k {
		t.Error("allreduce must grow with ranks")
	}
	// Log growth: doubling P adds roughly one tree level, not a doubling.
	if t2k > 1.35*t1k {
		t.Errorf("allreduce grows too fast: %v -> %v", t1k, t2k)
	}
}

func TestGeminiWorseThanAriesAtScale(t *testing.T) {
	// §VI: "the higher performance of Piz Daint's fully configured Cray
	// Aries interconnect compared to Titan's previous generation Cray
	// Gemini".
	g, a := gemini(), aries()
	for _, p := range []int{64, 512, 2048} {
		if g.AllReduceTime(p) <= a.AllReduceTime(p) {
			t.Errorf("p=%d: Gemini allreduce must cost more than Aries", p)
		}
		if g.MessageTime(8192, p) <= a.MessageTime(8192, p) {
			t.Errorf("p=%d: Gemini message must cost more than Aries", p)
		}
	}
	// The gap must widen with scale (congestion).
	r64 := g.AllReduceTime(64) / a.AllReduceTime(64)
	r4k := g.AllReduceTime(4096) / a.AllReduceTime(4096)
	if r4k <= r64 {
		t.Errorf("Gemini/Aries gap must widen with scale: %v at 64, %v at 4096", r64, r4k)
	}
}

func TestMessageTimeLatencyVsBandwidth(t *testing.T) {
	net := aries()
	small := net.MessageTime(8, 64)
	big := net.MessageTime(8e6, 64)
	if small < net.Latency {
		t.Error("small message must cost at least the latency")
	}
	if big < 8e6/net.Bandwidth {
		t.Error("big message must cost at least the bandwidth term")
	}
	// Deeper halos amortise latency: 16 messages of depth 1 must cost
	// more than 1 message of depth 16 (the matrix-powers rationale).
	depth1x16 := 16 * net.MessageTime(4000*8, 1024)
	depth16 := net.MessageTime(16*4000*8, 1024)
	if depth16 >= depth1x16 {
		t.Errorf("deep halo must beat many shallow ones: %v vs %v", depth16, depth1x16)
	}
}
