package propcheck

import (
	"fmt"
	"math"
	"math/rand"

	"tealeaf/internal/deck"
)

// Generator bounds. The mesh stays small enough that a full checker
// sweep (roughly a dozen solves per deck) is cheap, and the stiffness
// and contrast ranges are bounded so CG/PPCG converge to the tight eps
// the conservation checker needs: the per-step energy drift is of order
// eps·‖r₀‖, so runaway rx = dt·k/Δx² or extreme density jumps would
// spend the 1e-8 conservation budget on solver tolerance alone.
const (
	genMinCells2D = 8
	genMaxCells2D = 48
	genMinCells3D = 6
	genMaxCells3D = 14
	genMaxRegions = 4
	genMaxSteps   = 3
	genMinRx      = 0.05 // dt·kmax/minΔ², the implicit-step stiffness
	genMaxRx      = 500
)

// Gen draws one valid deck from r. Same rand state, same deck: the
// generator consumes a fixed number of variates per decision and never
// consults anything but r, so a seed fully determines the corpus.
//
// Sampled axes: dims ∈ {2,3}, mesh size and aspect ratio, domain origin
// and cell sizes, density/recip_density conductivity, a background plus
// up to four high-contrast regions (boxes, discs/spheres, points), the
// implicit-step stiffness regime (via dt), cg/ppcg, all three
// preconditioners, deep halos, fused dots, pipelined, split sweeps,
// tiling with explicit or auto tile edges, and the deflation hierarchy.
func Gen(r *rand.Rand) *deck.Deck {
	d := deck.Default()
	d.EndStep = 1 + r.Intn(genMaxSteps)
	// EndTime is set far beyond EndStep·dt so end_step alone sets the
	// horizon; Steps() then equals EndStep for any generated dt.
	d.EndTime = 1e12
	if r.Float64() < 0.35 {
		d.Dims = 3
	}

	if d.Dims == 2 {
		d.XCells = genMinCells2D + r.Intn(genMaxCells2D-genMinCells2D+1)
		aspect := math.Exp(uniform(r, math.Log(0.3), math.Log(3)))
		d.YCells = clampInt(int(float64(d.XCells)*aspect+0.5), genMinCells2D, genMaxCells2D)
	} else {
		d.XCells = genMinCells3D + r.Intn(genMaxCells3D-genMinCells3D+1)
		d.YCells = genMinCells3D + r.Intn(genMaxCells3D-genMinCells3D+1)
		d.ZCells = genMinCells3D + r.Intn(genMaxCells3D-genMinCells3D+1)
	}

	// Domain: random origin; cell sizes share a log-uniform base edge
	// with per-axis spread capped at √3 each way, so the directional
	// stiffness ratio (Δmax/Δmin)² stays ≤ 9. Unbounded anisotropy pushes
	// the operator's condition number past what the pipelined engine's
	// attainable-accuracy floor tolerates at tight eps (fuzz-found: a
	// 315× cell-aspect deck stalled its pipelined leg at 5e-10 relative).
	edge := logUniform(r, 0.05, 1.5)
	spread := func() float64 { return edge * logUniform(r, 1/math.Sqrt(3), math.Sqrt(3)) }
	d.XMin = uniform(r, -5, 5)
	d.XMax = d.XMin + float64(d.XCells)*spread()
	d.YMin = uniform(r, -5, 5)
	d.YMax = d.YMin + float64(d.YCells)*spread()
	d.ZMin = uniform(r, -5, 5)
	d.ZMax = d.ZMin + float64(d.ZCells)*spread()

	if r.Float64() < 0.5 {
		d.Coefficient = "recip_density"
	}

	// Background plus up to genMaxRegions jump regions. Density spans
	// [0.05, 20] in both directions, so two-region contrasts reach 400×.
	d.States = []deck.State{{
		Index:   1,
		Density: logUniform(r, 0.05, 20),
		Energy:  logUniform(r, 0.01, 5),
	}}
	for i, n := 0, r.Intn(genMaxRegions+1); i < n; i++ {
		d.States = append(d.States, genRegion(r, d, i+2))
	}

	// Solver axes.
	if r.Float64() < 0.4 {
		d.Solver = "ppcg"
		d.InnerSteps = 3 + r.Intn(8)
		d.EigenCGIters = 12 + r.Intn(9)
	}
	switch p := r.Float64(); {
	case p < 0.30:
		d.Precond = "jac_diag"
	case p < 0.45:
		d.Precond = "jac_block"
	}
	if d.Precond != "jac_block" && r.Float64() < 0.35 {
		d.HaloDepth = 2 + r.Intn(2)
	}
	if r.Float64() < 0.30 {
		d.FusedDots = true
	}
	if r.Float64() < 0.25 {
		d.Pipelined = true
	}
	if r.Float64() < 0.25 {
		d.SplitSweeps = true
	}
	if r.Float64() < 0.30 {
		d.Tiling = true
		if r.Float64() < 0.5 {
			d.TileX = 4 + r.Intn(13)
		}
		if r.Float64() < 0.5 {
			d.TileY = 2 + r.Intn(7)
		}
		if d.Dims == 3 && r.Float64() < 0.5 {
			d.TileZ = 2 + r.Intn(5)
		}
	}
	minCells := d.XCells
	if d.YCells < minCells {
		minCells = d.YCells
	}
	if d.Dims == 3 && d.ZCells < minCells {
		minCells = d.ZCells
	}
	if minCells >= 16 && r.Float64() < 0.25 {
		d.UseDeflation = true
		d.DeflationBlocks = 2 << r.Intn(2) // 2 or 4 blocks per direction
		if d.DeflationBlocks == 4 && r.Float64() < 0.5 {
			d.DeflationLevels = 2
		}
	}

	// dt regime: pick a target stiffness rx = dt·kmax/minΔ² and back out
	// dt, so "how implicit is the step" is sampled directly rather than
	// emerging from the domain/mesh/conductivity draws.
	minD := math.Min((d.XMax-d.XMin)/float64(d.XCells), (d.YMax-d.YMin)/float64(d.YCells))
	if d.Dims == 3 {
		minD = math.Min(minD, (d.ZMax-d.ZMin)/float64(d.ZCells))
	}
	kmax := 0.0
	for _, s := range d.States {
		w := s.Density
		if d.Coefficient == "recip_density" {
			w = 1 / s.Density
		}
		if w > kmax {
			kmax = w
		}
	}
	rx := logUniform(r, genMinRx, genMaxRx)
	d.InitialTimestep = clampFloat(rx*minD*minD/kmax, 1e-7, 100)

	// eps tiers: the stop tolerance must sit above the engine family's
	// attainable-accuracy floor, which grows with the implicit-step
	// stiffness (the pipelined three-term recurrences lose the most —
	// fuzz-found stalls at ~3e-11 relative near rx ≈ 45). Mild decks keep
	// the tight 1e-12/1e-11 regime that stresses the rank, halo and
	// bit-identity contracts hardest.
	d.Eps = 1e-12
	if r.Float64() < 0.5 {
		d.Eps = 1e-11
	}
	switch {
	case rx > 30:
		d.Eps = 1e-9
	case rx > 5:
		d.Eps = 1e-10
	}
	if d.UseDeflation && d.Eps < 1e-10 {
		// The deflation projector re-injects O(ε·‖A‖·‖u‖) roundoff every
		// iteration, so deflated solves stall near 1e-11 relative even on
		// mild decks; asking for less is asking for the noise floor itself.
		d.Eps = 1e-10
	}
	d.MaxIters = 30000

	if err := d.Validate(); err != nil {
		// The generator's bounds are chosen so every draw validates; a
		// rejection here is a propcheck bug, not a fuzz finding.
		panic(fmt.Sprintf("propcheck: generated deck invalid: %v\n%s", err, d.Format()))
	}
	return d
}

// genRegion draws one jump region: a box, a disc/sphere, or a point
// source, with density and energy drawn independently of the background
// so contrasts are high in either direction.
func genRegion(r *rand.Rand, d *deck.Deck, index int) deck.State {
	s := deck.State{
		Index:   index,
		Density: logUniform(r, 0.05, 20),
		Energy:  logUniform(r, 0.01, 25),
	}
	switch p := r.Float64(); {
	case p < 0.40:
		s.Geometry = deck.GeomRectangle
		s.XMin, s.XMax = subInterval(r, d.XMin, d.XMax)
		s.YMin, s.YMax = subInterval(r, d.YMin, d.YMax)
		if d.Dims == 3 {
			s.ZMin, s.ZMax = subInterval(r, d.ZMin, d.ZMax)
		}
	case p < 0.75:
		s.Geometry = deck.GeomCircle
		s.CX = uniform(r, d.XMin, d.XMax)
		s.CY = uniform(r, d.YMin, d.YMax)
		minW := math.Min(d.XMax-d.XMin, d.YMax-d.YMin)
		if d.Dims == 3 {
			s.CZ = uniform(r, d.ZMin, d.ZMax)
			minW = math.Min(minW, d.ZMax-d.ZMin)
		}
		s.Radius = uniform(r, 0.05, 0.4) * minW
	default:
		s.Geometry = deck.GeomPoint
		s.CX = uniform(r, d.XMin, d.XMax)
		s.CY = uniform(r, d.YMin, d.YMax)
		if d.Dims == 3 {
			s.CZ = uniform(r, d.ZMin, d.ZMax)
		}
	}
	return s
}

// subInterval draws a non-degenerate sub-interval of [lo, hi]: the low
// edge lands in the first 80% of the span and the width covers 10–90% of
// what remains, so boxes range from slivers to near-full coverage.
func subInterval(r *rand.Rand, lo, hi float64) (float64, float64) {
	a := lo + uniform(r, 0, 0.8)*(hi-lo)
	b := a + uniform(r, 0.1, 0.9)*(hi-a)
	return a, b
}

func uniform(r *rand.Rand, lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

func logUniform(r *rand.Rand, lo, hi float64) float64 {
	return math.Exp(uniform(r, math.Log(lo), math.Log(hi)))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
