package propcheck

import "tealeaf/internal/deck"

// shrinkMinCells is the mesh floor the shrinker will not halve below:
// small enough to be a trivially inspectable reproducer, large enough
// that every checker's 2×2 decomposition and deflation blocking still
// fit.
const shrinkMinCells = 6

// Clone returns a deep copy of d (the States slice is the only
// reference field). Shrink candidates and checker legs mutate clones so
// the original deck is never disturbed.
func Clone(d *deck.Deck) *deck.Deck {
	c := *d
	c.States = append([]deck.State(nil), d.States...)
	return &c
}

// shrinkStep is one candidate reduction. apply mutates the deck and
// reports whether it changed anything; inapplicable steps return false
// and cost nothing.
type shrinkStep struct {
	name  string
	apply func(d *deck.Deck) bool
}

// shrinkSteps is ordered biggest-win-first: mesh halvings and step cuts
// shrink solve cost geometrically, region drops simplify the physics,
// and the option strips leave the smallest config that still fails.
var shrinkSteps = []shrinkStep{
	{"halve-x", func(d *deck.Deck) bool {
		if d.XCells/2 < shrinkMinCells {
			return false
		}
		d.XCells /= 2
		return true
	}},
	{"halve-y", func(d *deck.Deck) bool {
		if d.YCells/2 < shrinkMinCells {
			return false
		}
		d.YCells /= 2
		return true
	}},
	{"halve-z", func(d *deck.Deck) bool {
		if d.Dims != 3 || d.ZCells/2 < shrinkMinCells {
			return false
		}
		d.ZCells /= 2
		return true
	}},
	{"one-step", func(d *deck.Deck) bool {
		if d.Steps() <= 1 {
			return false
		}
		d.EndStep = 1
		return true
	}},
	{"drop-region", func(d *deck.Deck) bool {
		if len(d.States) <= 1 {
			return false
		}
		d.States = d.States[:len(d.States)-1]
		return true
	}},
	{"no-deflation", func(d *deck.Deck) bool {
		if !d.UseDeflation {
			return false
		}
		d.UseDeflation = false
		return true
	}},
	{"flat-deflation", func(d *deck.Deck) bool {
		if !d.UseDeflation || d.DeflationLevels <= 1 {
			return false
		}
		d.DeflationLevels = 1
		return true
	}},
	{"no-pipelined", func(d *deck.Deck) bool {
		if !d.Pipelined {
			return false
		}
		d.Pipelined = false
		return true
	}},
	{"no-split-sweeps", func(d *deck.Deck) bool {
		if !d.SplitSweeps {
			return false
		}
		d.SplitSweeps = false
		return true
	}},
	{"no-fused-dots", func(d *deck.Deck) bool {
		if !d.FusedDots {
			return false
		}
		d.FusedDots = false
		return true
	}},
	{"precond-none", func(d *deck.Deck) bool {
		if d.Precond == "none" {
			return false
		}
		d.Precond = "none"
		return true
	}},
	{"halo-1", func(d *deck.Deck) bool {
		if d.HaloDepth <= 1 {
			return false
		}
		d.HaloDepth = 1
		return true
	}},
	{"no-tiling", func(d *deck.Deck) bool {
		if !d.Tiling && d.TileX == 0 && d.TileY == 0 && d.TileZ == 0 {
			return false
		}
		d.Tiling = false
		d.TileX, d.TileY, d.TileZ = 0, 0, 0
		return true
	}},
	{"solver-cg", func(d *deck.Deck) bool {
		if d.Solver == "cg" {
			return false
		}
		d.Solver = "cg"
		return true
	}},
}

// Shrink greedily minimises a failing deck: it repeatedly tries each
// reduction on a clone, keeps the clone whenever the deck still
// validates AND fails (per the caller's predicate — in practice "the
// same checker still rejects it"), and stops at a fixpoint or when
// budget candidate evaluations have been spent. It returns the smallest
// failing deck found and the number of predicate evaluations used; the
// result's Format() is the ready-to-run reproducer.
func Shrink(d *deck.Deck, fails func(*deck.Deck) bool, budget int) (*deck.Deck, int) {
	cur := Clone(d)
	attempts := 0
	for improved := true; improved && attempts < budget; {
		improved = false
		for _, step := range shrinkSteps {
			if attempts >= budget {
				break
			}
			cand := Clone(cur)
			if !step.apply(cand) {
				continue
			}
			if cand.Validate() != nil {
				continue
			}
			attempts++
			if fails(cand) {
				cur = cand
				improved = true
			}
		}
	}
	return cur, attempts
}
