package propcheck

import (
	"fmt"
	"math"

	"tealeaf/internal/core"
	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
	"tealeaf/internal/par"
	"tealeaf/internal/solver"
)

// Checker tolerances. The exact-equality checkers (backend at 2 ranks,
// tiled across worker counts) take no tolerance at all: those contracts
// are bit-identity, pinned as such since PRs 4 and 8. The rest are
// relative to the final energy field's magnitude, matching the golden
// tests that established them.
// TolRank and TolHalo are floors, not the whole tolerance: the rank and
// halo checkers compare legs whose iterations follow different FP
// trajectories, so each stops with a different O(eps·κ) unconverged
// error component and the fields can only be expected to agree to a
// multiple of the solve tolerance (see legTol). The floors carry 2×
// slack over the golden 1e-10 contract because fuzz decks at
// eps=1e-12..1e-11 can flip a stop decision by ±1 iteration between
// decompositions and land the fields a final-update apart — observed up
// to 1.4e-10 relative on passing-grade decks.
const (
	TolConserve = 1e-8  // relative internal-energy drift over the run
	TolEngine   = 1e-8  // fused vs classic vs pipelined
	TolRank     = 2e-10 // floor: serial vs 2- and 4-rank decompositions
	TolHalo     = 2e-10 // floor: halo depth 2,3 vs 1
)

// legTol is the tolerance for comparing two converged-but-independent
// solve trajectories of the same deck: the larger of the contract floor
// and mult× the deck's stop tolerance, scaled by the field magnitude.
// The goldens pin 1e-10 at eps=1e-9 on decks with benign spectra;
// across arbitrary decks the stop error is O(eps·κ) with a
// leg-dependent direction, so the spread scales with eps. Rank and halo
// legs share the recurrence structure and differ only in summation
// order (observed spread ≤ ~8·eps → mult 30); engine and tiled-vs-
// untiled legs run structurally different recurrences with nearly
// independent stop errors (observed ≤ ~85·eps → mult 150). Both stay
// sharp invariants — a kernel bug perturbs fields at O(1)·Δ, decades
// above either bound.
func legTol(floor, mult float64, d *deck.Deck, base *runOut) float64 {
	t := floor
	if e := mult * d.Eps; e > t {
		t = e
	}
	return t * maxAbs(base)
}

// runOut is one solve leg's observables: the final energy field (2D or
// 3D), the internal energy before and after stepping, and the total
// outer-iteration count.
type runOut struct {
	e2       *grid.Field2D
	e3       *grid.Field3D
	ie0, ie1 float64
	iters    int
}

// harness runs one deck's checker legs, caching the runs that several
// checkers share (the base serial solve and the 2×1 Hub solve).
type harness struct {
	d       *deck.Deck
	cfg     Config
	base    *runOut
	baseErr error
	hub2    *runOut
	hub2Err error
}

func newHarness(d *deck.Deck, cfg Config) *harness {
	return &harness{d: d, cfg: cfg}
}

// runSerial solves d in-process with the given worker count, applying
// mutate to the solver options before the first step (how the classic
// and pipelined legs are selected without re-parsing the deck). The
// leg name feeds the Tamper fault-injection hook.
func (h *harness) runSerial(d *deck.Deck, leg string, workers int, mutate func(*solver.Options)) (*runOut, error) {
	pool := par.Serial
	if workers > 1 {
		pool = par.NewPool(workers)
		defer pool.Close()
	}
	if d.Dims == 3 {
		inst, err := core.NewSerial3D(d, pool)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", leg, err)
		}
		out := &runOut{ie0: inst.Summarise().InternalEnergy}
		if mutate != nil {
			mutate(inst.Options())
		}
		sum, err := inst.Run(d.Steps())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", leg, err)
		}
		out.e3 = inst.Energy
		out.ie1 = sum.InternalEnergy
		out.iters = sum.TotalIterations
		return out, nil
	}
	inst, err := core.NewSerial(d, pool)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", leg, err)
	}
	out := &runOut{ie0: inst.Summarise().InternalEnergy}
	if mutate != nil {
		mutate(inst.Options())
	}
	sum, err := inst.Run(d.Steps())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", leg, err)
	}
	if h.cfg.Tamper != nil {
		h.cfg.Tamper(leg, inst.Energy)
		// Re-summarise so a tampered field also perturbs the conserved
		// quantity — a fault injected into the base leg must trip the
		// conservation checker, not just the field comparisons.
		sum.InternalEnergy = inst.Summarise().InternalEnergy
	}
	out.e2 = inst.Energy
	out.ie1 = sum.InternalEnergy
	out.iters = sum.TotalIterations
	return out, nil
}

// runDist solves d on a px×py(×pz) rank decomposition over the given
// backend with one worker per rank, returning the gathered global field.
func (h *harness) runDist(d *deck.Deck, leg string, px, py, pz int, backend core.Backend) (*runOut, error) {
	if d.Dims == 3 {
		res, err := core.RunDistributed3D(d, px, py, pz, d.Steps(), 1, core.WithBackend(backend))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", leg, err)
		}
		return &runOut{e3: res.Energy, ie1: res.Summary.InternalEnergy, iters: res.Summary.TotalIterations}, nil
	}
	res, err := core.RunDistributed(d, px, py, d.Steps(), 1, core.WithBackend(backend))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", leg, err)
	}
	if h.cfg.Tamper != nil {
		h.cfg.Tamper(leg, res.Energy)
	}
	return &runOut{e2: res.Energy, ie1: res.Summary.InternalEnergy, iters: res.Summary.TotalIterations}, nil
}

// baseRun lazily computes and caches the plain serial solve of the deck
// exactly as written, shared by the finite, conserve and engines
// checkers and by the report's iteration/drift columns.
func (h *harness) baseRun() (*runOut, error) {
	if h.base == nil && h.baseErr == nil {
		h.base, h.baseErr = h.runSerial(h.d, "base", 1, nil)
	}
	return h.base, h.baseErr
}

// hub2Run lazily computes and caches the 2×1(×1) Hub-backend solve,
// shared by the rank-invariance and backend checkers.
func (h *harness) hub2Run() (*runOut, error) {
	if h.hub2 == nil && h.hub2Err == nil {
		h.hub2, h.hub2Err = h.runDist(h.d, "hub2", 2, 1, 1, core.BackendHub)
	}
	return h.hub2, h.hub2Err
}

// maxAbs returns the final field's infinity norm, the scale the relative
// tolerances are anchored to (floored at 1 so near-zero fields do not
// turn roundoff into failures).
func maxAbs(o *runOut) float64 {
	m := 1.0
	if o.e3 != nil {
		g := o.e3.Grid
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					if v := math.Abs(o.e3.At(i, j, k)); v > m {
						m = v
					}
				}
			}
		}
		return m
	}
	b := o.e2.Grid.Interior()
	for k := b.Y0; k < b.Y1; k++ {
		for j := b.X0; j < b.X1; j++ {
			if v := math.Abs(o.e2.At(j, k)); v > m {
				m = v
			}
		}
	}
	return m
}

func maxDiff(a, b *runOut) float64 {
	if a.e3 != nil {
		return a.e3.MaxDiff(b.e3)
	}
	return a.e2.MaxDiff(b.e2)
}

// bitDiff counts interior cells whose values differ in any bit, and
// returns the largest absolute difference seen. NaNs compare unequal to
// themselves but the finite checker runs first, so a NaN here is already
// a reported failure.
func bitDiff(a, b *runOut) (cells int, worst float64) {
	if a.e3 != nil {
		g := a.e3.Grid
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					if va, vb := a.e3.At(i, j, k), b.e3.At(i, j, k); va != vb {
						cells++
						if d := math.Abs(va - vb); d > worst {
							worst = d
						}
					}
				}
			}
		}
		return cells, worst
	}
	bd := a.e2.Grid.Interior()
	for k := bd.Y0; k < bd.Y1; k++ {
		for j := bd.X0; j < bd.X1; j++ {
			if va, vb := a.e2.At(j, k), b.e2.At(j, k); va != vb {
				cells++
				if d := math.Abs(va - vb); d > worst {
					worst = d
				}
			}
		}
	}
	return cells, worst
}

func relDrift(o *runOut) float64 {
	scale := math.Abs(o.ie0)
	if scale == 0 {
		scale = 1
	}
	return math.Abs(o.ie1-o.ie0) / scale
}

type checkerDef struct {
	name    string
	applies func(d *deck.Deck) bool
	run     func(h *harness) error
}

// checkers is the fixed-order invariant suite; CheckDeck stops at the
// first failure so the shrinker has a single predicate to preserve.
var checkers = []checkerDef{
	{name: "finite", run: checkFinite},
	{name: "conserve", run: checkConserve},
	{name: "engines", run: checkEngines},
	{name: "rank-invariance", run: checkRankInvariance},
	{name: "backend-bit-equality", run: checkBackendBits},
	{name: "tiled-bit-identity", run: checkTiled},
	{name: "halo-depth",
		applies: func(d *deck.Deck) bool { return d.Precond != "jac_block" },
		run:     checkHaloDepth},
	{name: "temporal-chain",
		applies: func(d *deck.Deck) bool { return d.Solver == "cg" && d.Precond != "jac_block" },
		run:     checkTemporalChain},
}

// checkFinite: every interior cell of the final energy field is finite.
func checkFinite(h *harness) error {
	base, err := h.baseRun()
	if err != nil {
		return err
	}
	bad := 0
	scan := func(v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if base.e3 != nil {
		g := base.e3.Grid
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					scan(base.e3.At(i, j, k))
				}
			}
		}
	} else {
		b := base.e2.Grid.Interior()
		for k := b.Y0; k < b.Y1; k++ {
			for j := b.X0; j < b.X1; j++ {
				scan(base.e2.At(j, k))
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("final energy field has %d non-finite cells", bad)
	}
	return nil
}

// checkConserve: with reflecting (zero-flux) boundaries the implicit
// step's fluxes telescope, so total internal energy is analytically
// conserved; only solver tolerance and FP roundoff may move it.
func checkConserve(h *harness) error {
	base, err := h.baseRun()
	if err != nil {
		return err
	}
	if drift := relDrift(base); drift > TolConserve {
		return fmt.Errorf("internal energy drifted by %.3e relative (%g -> %g), tol %.0e",
			drift, base.ie0, base.ie1, TolConserve)
	}
	return nil
}

// checkEngines: the fused (default), classic (DisableFused) and
// pipelined solver engines agree on the final field. Engines that do
// not apply to the deck's solver/preconditioner fall back silently, in
// which case the comparison is trivially exact — also correct.
func checkEngines(h *harness) error {
	base, err := h.baseRun()
	if err != nil {
		return err
	}
	classic, err := h.runSerial(h.d, "classic", 1, func(o *solver.Options) {
		o.DisableFused = true
		o.Pipelined = false
	})
	if err != nil {
		return err
	}
	piped, err := h.runSerial(h.d, "pipelined", 1, func(o *solver.Options) {
		o.DisableFused = false
		o.Pipelined = true
	})
	if err != nil {
		return err
	}
	tol := legTol(TolEngine, 150, h.d, base)
	if diff := maxDiff(base, classic); diff > tol {
		return fmt.Errorf("base vs classic engines differ by %.3e (tol %.3e)", diff, tol)
	}
	if diff := maxDiff(base, piped); diff > tol {
		return fmt.Errorf("base vs pipelined engines differ by %.3e (tol %.3e)", diff, tol)
	}
	return nil
}

// checkRankInvariance: 2- and 4-rank Hub decompositions reproduce the
// serial answer to TolRank relative.
func checkRankInvariance(h *harness) error {
	base, err := h.baseRun()
	if err != nil {
		return err
	}
	r2, err := h.hub2Run()
	if err != nil {
		return err
	}
	r4, err := h.runDist(h.d, "rank2x2", 2, 2, 1, core.BackendHub)
	if err != nil {
		return err
	}
	tol := legTol(TolRank, 150, h.d, base)
	if diff := maxDiff(base, r2); diff > tol {
		return fmt.Errorf("serial vs 2-rank differ by %.3e (tol %.3e)", diff, tol)
	}
	if diff := maxDiff(base, r4); diff > tol {
		return fmt.Errorf("serial vs 4-rank differ by %.3e (tol %.3e)", diff, tol)
	}
	return nil
}

// checkBackendBits: at exactly two ranks the Hub's arrival-order
// reduction sums two partials, and two-term FP addition is commutative —
// so Hub and TCP must agree BIT FOR BIT. (At ≥3 ranks association order
// differs and only the 1e-10 golden contract holds; that regime is
// covered by checkRankInvariance.)
func checkBackendBits(h *harness) error {
	hub, err := h.hub2Run()
	if err != nil {
		return err
	}
	tcp, err := h.runDist(h.d, "tcp2", 2, 1, 1, core.BackendTCP)
	if err != nil {
		return err
	}
	if cells, worst := bitDiff(hub, tcp); cells > 0 {
		return fmt.Errorf("hub vs tcp at 2 ranks differ in %d cells (worst %.3e); expected bit-identical", cells, worst)
	}
	return nil
}

// checkTiled: tiled runs are bit-identical across pool sizes {1,2,4}
// (the tiled scheduler folds reduction partials in fixed tile order) and
// agree with the untiled run to TolEngine relative.
func checkTiled(h *harness) error {
	un := Clone(h.d)
	un.Tiling = false
	un.TileX, un.TileY, un.TileZ = 0, 0, 0
	td := Clone(h.d)
	td.Tiling = true
	// Pin explicit tile edges when the deck leaves them to the
	// auto-tuner: tiny meshes may auto-tune to a single tile, which
	// would make the cross-worker comparison vacuous.
	if td.TileX == 0 {
		td.TileX = maxInt(4, td.XCells/2)
	}
	if td.TileY == 0 {
		td.TileY = maxInt(2, td.YCells/3)
	}
	if td.Dims == 3 && td.TileZ == 0 {
		td.TileZ = maxInt(2, td.ZCells/2)
	}
	untiled, err := h.runSerial(un, "untiled", 1, nil)
	if err != nil {
		return err
	}
	w1, err := h.runSerial(td, "tiled-w1", 1, nil)
	if err != nil {
		return err
	}
	w2, err := h.runSerial(td, "tiled-w2", 2, nil)
	if err != nil {
		return err
	}
	w4, err := h.runSerial(td, "tiled-w4", 4, nil)
	if err != nil {
		return err
	}
	if cells, worst := bitDiff(w1, w2); cells > 0 {
		return fmt.Errorf("tiled 1 vs 2 workers differ in %d cells (worst %.3e); expected bit-identical", cells, worst)
	}
	if cells, worst := bitDiff(w1, w4); cells > 0 {
		return fmt.Errorf("tiled 1 vs 4 workers differ in %d cells (worst %.3e); expected bit-identical", cells, worst)
	}
	tol := legTol(TolEngine, 150, h.d, untiled)
	if diff := maxDiff(untiled, w1); diff > tol {
		return fmt.Errorf("untiled vs tiled differ by %.3e (tol %.3e)", diff, tol)
	}
	return nil
}

// checkHaloDepth: the matrix-powers deep-halo machinery must not change
// the answer — depths 2 and 3 reproduce depth 1 to TolHalo relative.
// (jac_block is depth-incompatible and gated out via applies.)
func checkHaloDepth(h *harness) error {
	mk := func(depth int) *deck.Deck {
		c := Clone(h.d)
		c.HaloDepth = depth
		return c
	}
	d1, err := h.runSerial(mk(1), "halo1", 1, nil)
	if err != nil {
		return err
	}
	d2, err := h.runSerial(mk(2), "halo2", 1, nil)
	if err != nil {
		return err
	}
	d3, err := h.runSerial(mk(3), "halo3", 1, nil)
	if err != nil {
		return err
	}
	tol := legTol(TolHalo, 150, h.d, d1)
	if diff := maxDiff(d1, d2); diff > tol {
		return fmt.Errorf("halo depth 2 vs 1 differ by %.3e (tol %.3e)", diff, tol)
	}
	if diff := maxDiff(d1, d3); diff > tol {
		return fmt.Errorf("halo depth 3 vs 1 differ by %.3e (tol %.3e)", diff, tol)
	}
	return nil
}

// checkTemporalChain: the temporal-blocked chained deep-halo cycle
// (tl_temporal) must be bit-identical to the unchained cycle — same
// iterates, same iteration counts — at chained depths 2 and 3 and at
// every worker count. The chain re-orders sweeps band by band but folds
// its per-tile partials in the same fixed tile order as the unchained
// reducers, so any deviating bit is a scheduler bug, not roundoff.
// (jac_block is depth-incompatible and the chain only exists in the CG
// engines, hence the applies gate.)
func checkTemporalChain(h *harness) error {
	for _, depth := range []int{2, 3} {
		mk := func(temporal bool) *deck.Deck {
			c := Clone(h.d)
			c.HaloDepth = depth
			c.Tiling = true
			// Pin tile edges as checkTiled does, and force band cells small
			// enough that the chain sees several bands on tiny meshes.
			if c.TileX == 0 {
				c.TileX = maxInt(4, c.XCells/2)
			}
			if c.TileY == 0 {
				c.TileY = maxInt(2, c.YCells/3)
			}
			if c.Dims == 3 && c.TileZ == 0 {
				c.TileZ = maxInt(2, c.ZCells/2)
			}
			c.Temporal = temporal
			if temporal {
				c.ChainBands = 5
			}
			return c
		}
		for _, workers := range []int{1, 2, 4} {
			un, err := h.runSerial(mk(false), fmt.Sprintf("temporal-un-d%d-w%d", depth, workers), workers, nil)
			if err != nil {
				return err
			}
			ch, err := h.runSerial(mk(true), fmt.Sprintf("temporal-ch-d%d-w%d", depth, workers), workers, nil)
			if err != nil {
				return err
			}
			if un.iters != ch.iters {
				return fmt.Errorf("depth %d workers %d: chained solve took %d iterations, unchained %d",
					depth, workers, ch.iters, un.iters)
			}
			if cells, worst := bitDiff(un, ch); cells > 0 {
				return fmt.Errorf("depth %d workers %d: chained vs unchained differ in %d cells (worst %.3e); expected bit-identical",
					depth, workers, cells, worst)
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
