// Package propcheck is a property-based testing harness for the whole
// solver stack: a seeded, deterministic random-deck generator (gen.go)
// paired with an invariant-checker suite (invariants.go) that solves
// each generated deck across the repo's configuration axes and asserts
// the equivalence contracts PRs 1–8 established:
//
//   - finite:               every cell of the final energy field is finite
//   - conserve:             internal energy is conserved across steps to
//     1e-8 relative (reflecting boundaries make the continuum fluxes
//     telescope exactly; only solver tolerance and FP roundoff remain)
//   - engines:              fused, classic and pipelined CG/PPCG engines
//     agree to 1e-8 relative on the final energy field
//   - rank-invariance:      1-, 2- and 4-rank decompositions agree to
//     2e-10 relative (2× the golden contract; see invariants.go on why
//     fuzz decks' tighter eps earns the slack)
//   - backend-bit-equality: Hub and TCP backends are BIT-IDENTICAL at two
//     ranks (with two ranks FP addition is commutative, so the Hub's
//     arrival-order sums cannot differ from TCP's fixed butterfly; at
//     three or more ranks only the 1e-10 golden contract holds)
//   - tiled-bit-identity:   tiled runs are bit-identical across worker
//     counts {1,2,4} and agree with the untiled run to 1e-8 relative
//   - halo-depth:           tl_ppcg_halo_depth ∈ {1,2,3} agree to 2e-10
//     relative (skipped for jac_block, which is depth-incompatible)
//
// A failing deck is automatically shrunk (shrink.go) to a minimal
// reproducer — halve the mesh, drop regions, cut steps, strip options —
// that still fails the same checker, and printed as a ready-to-run deck
// string via deck.Format.
//
// The harness is wired into `teabench -exp fuzz` (-seed/-n/-fuzzout);
// tests inject faults through Config.Tamper to prove a broken kernel is
// detected and shrunk.
package propcheck

import (
	"fmt"
	"math/rand"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

// TamperFunc is the fault-injection hook: when set, every 2D checker leg
// hands its final energy field here (after the run, before comparisons)
// along with the leg's name — "base", "classic", "pipelined", "rank2x1",
// "rank2x2", "hub2", "tcp2", "untiled", "tiled-w1", "tiled-w2",
// "tiled-w4", "halo1", "halo2", "halo3". Perturbing one leg simulates a
// kernel bug confined to that configuration; tests use it to demonstrate
// detection and shrinking without actually breaking a kernel.
type TamperFunc func(leg string, energy *grid.Field2D)

// Config controls a fuzzing run.
type Config struct {
	// Seed seeds the deck generator; same seed, same decks, same verdicts.
	Seed int64
	// N is the number of decks to generate and check.
	N int
	// Tamper, when non-nil, perturbs checker legs (see TamperFunc).
	Tamper TamperFunc
	// Log, when non-nil, receives one progress line per deck.
	Log func(format string, args ...any)
	// ShrinkBudget caps the number of candidate decks the shrinker may
	// solve per failure; 0 means the default (40).
	ShrinkBudget int
}

// Failure records one checker violation together with its reproducers.
type Failure struct {
	Checker        string `json:"checker"`
	Detail         string `json:"detail"`
	Deck           string `json:"deck"`
	Shrunk         string `json:"shrunk"`
	ShrinkAttempts int    `json:"shrink_attempts"`
}

// CaseResult is the per-deck record in the report.
type CaseResult struct {
	Index      int      `json:"index"`
	Dims       int      `json:"dims"`
	Mesh       string   `json:"mesh"`
	Solver     string   `json:"solver"`
	Axes       []string `json:"axes"`
	Steps      int      `json:"steps"`
	Iterations int      `json:"iterations"`
	Drift      float64  `json:"conservation_drift"`
	Checkers   []string `json:"checkers"`
	Failure    *Failure `json:"failure,omitempty"`
}

// Report is the whole run's outcome, serialised to BENCH_fuzz.json by
// teabench -exp fuzz.
type Report struct {
	Seed     int64        `json:"seed"`
	N        int          `json:"n"`
	Failures int          `json:"failures"`
	Cases    []CaseResult `json:"cases"`
}

// OK reports whether every deck passed every applicable checker.
func (r *Report) OK() bool { return r.Failures == 0 }

// Run generates cfg.N decks from cfg.Seed and checks each against the
// full invariant suite, shrinking any failure to a minimal reproducer.
func Run(cfg Config) *Report {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed, N: cfg.N}
	for i := 0; i < cfg.N; i++ {
		d := Gen(rng)
		cr := CheckDeck(d, cfg)
		cr.Index = i
		if cr.Failure != nil {
			rep.Failures++
		}
		if cfg.Log != nil {
			verdict := "ok"
			if cr.Failure != nil {
				verdict = "FAIL " + cr.Failure.Checker
			}
			cfg.Log("deck %02d %dD %s %s steps=%d iters=%d drift=%.2e [%s] %s",
				i, cr.Dims, cr.Mesh, cr.Solver, cr.Steps, cr.Iterations, cr.Drift,
				axisString(cr.Axes), verdict)
		}
		rep.Cases = append(rep.Cases, cr)
	}
	return rep
}

// CheckDeck runs every applicable invariant checker against one deck.
// Checkers run in a fixed order and stop at the first failure, which is
// then shrunk with the same checker as the predicate.
func CheckDeck(d *deck.Deck, cfg Config) CaseResult {
	h := newHarness(d, cfg)
	cr := CaseResult{
		Dims:   d.Dims,
		Mesh:   meshString(d),
		Solver: d.Solver,
		Axes:   deckAxes(d),
		Steps:  d.Steps(),
	}
	for _, c := range checkers {
		if c.applies != nil && !c.applies(d) {
			continue
		}
		cr.Checkers = append(cr.Checkers, c.name)
		err := c.run(h)
		if err == nil {
			continue
		}
		cr.Failure = &Failure{Checker: c.name, Detail: err.Error(), Deck: d.Format()}
		budget := cfg.ShrinkBudget
		if budget <= 0 {
			budget = 40
		}
		shrunk, attempts := Shrink(d, func(cand *deck.Deck) bool {
			return c.run(newHarness(cand, cfg)) != nil
		}, budget)
		cr.Failure.Shrunk = shrunk.Format()
		cr.Failure.ShrinkAttempts = attempts
		break
	}
	if base, err := h.baseRun(); err == nil {
		cr.Iterations = base.iters
		cr.Drift = relDrift(base)
	}
	return cr
}

func meshString(d *deck.Deck) string {
	if d.Dims == 3 {
		return fmt.Sprintf("%dx%dx%d", d.XCells, d.YCells, d.ZCells)
	}
	return fmt.Sprintf("%dx%d", d.XCells, d.YCells)
}

// deckAxes summarises the sampled configuration axes for the report.
func deckAxes(d *deck.Deck) []string {
	axes := []string{"precond=" + d.Precond, "coeff=" + d.Coefficient}
	if d.HaloDepth > 1 {
		axes = append(axes, fmt.Sprintf("halo=%d", d.HaloDepth))
	}
	if d.FusedDots {
		axes = append(axes, "fused_dots")
	}
	if d.Pipelined {
		axes = append(axes, "pipelined")
	}
	if d.SplitSweeps {
		axes = append(axes, "split_sweeps")
	}
	if d.UseDeflation {
		axes = append(axes, fmt.Sprintf("deflation=%dx%d", d.DeflationBlocks, d.DeflationLevels))
	}
	if d.Tiling {
		axes = append(axes, "tiling")
	}
	return axes
}

func axisString(axes []string) string {
	s := ""
	for i, a := range axes {
		if i > 0 {
			s += " "
		}
		s += a
	}
	return s
}
