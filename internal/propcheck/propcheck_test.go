package propcheck

import (
	"math/rand"
	"strings"
	"testing"

	"tealeaf/internal/deck"
	"tealeaf/internal/grid"
)

// TestGenDeterministic: the generator's whole point is that a seed
// reproduces a corpus exactly — two independent streams from the same
// seed must emit identical decks, draw after draw.
func TestGenDeterministic(t *testing.T) {
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		a, b := Gen(r1).Format(), Gen(r2).Format()
		if a != b {
			t.Fatalf("draw %d diverged between identical streams:\n%s\n--- vs ---\n%s", i, a, b)
		}
	}
}

// TestGenValidAndRoundTrips: every generated deck validates (Gen panics
// otherwise, but the test documents the contract) and survives the
// Format -> ParseString -> Format round trip unchanged, so a shrunk
// reproducer printed in a failure report really is runnable as-is.
func TestGenValidAndRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	dims := map[int]int{}
	for i := 0; i < 50; i++ {
		d := Gen(r)
		if err := d.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		dims[d.Dims]++
		text := d.Format()
		back, err := deck.ParseString(text)
		if err != nil {
			t.Fatalf("draw %d does not re-parse: %v\n%s", i, err, text)
		}
		if got := back.Format(); got != text {
			t.Fatalf("draw %d round trip changed the deck:\n%s\n--- vs ---\n%s", i, text, got)
		}
	}
	if dims[2] == 0 || dims[3] == 0 {
		t.Errorf("50 draws covered dims %v; want both 2D and 3D", dims)
	}
}

// TestRunCleanCorpus: a small seeded run passes every checker and
// reports per-deck records suitable for BENCH_fuzz.json.
func TestRunCleanCorpus(t *testing.T) {
	rep := Run(Config{Seed: 1, N: 4, Log: t.Logf})
	if !rep.OK() {
		for _, c := range rep.Cases {
			if c.Failure != nil {
				t.Errorf("deck %d failed %s: %s\ndeck:\n%s\nshrunk:\n%s",
					c.Index, c.Failure.Checker, c.Failure.Detail, c.Failure.Deck, c.Failure.Shrunk)
			}
		}
	}
	if len(rep.Cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if len(c.Checkers) == 0 {
			t.Errorf("deck %d: no checkers recorded", c.Index)
		}
		if c.Drift > TolConserve {
			t.Errorf("deck %d: drift %.3e above the conservation gate", c.Index, c.Drift)
		}
	}
}

// tamperDeck is the fixed deck the fault-injection tests run: small,
// two-state, converges in a handful of iterations, and sized so the
// shrinker has real work (mesh halvings, a droppable region).
func tamperDeck(t *testing.T) *deck.Deck {
	t.Helper()
	d := deck.Default()
	d.XCells, d.YCells = 12, 12
	d.EndStep = 2
	d.EndTime = 1e12
	d.Eps = 1e-9
	d.States = []deck.State{
		{Index: 1, Density: 1, Energy: 1},
		{Index: 2, Density: 5, Energy: 4, Geometry: deck.GeomRectangle, XMin: 2, XMax: 6, YMin: 2, YMax: 7},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("tamper deck invalid: %v", err)
	}
	return d
}

// TestBrokenKernelDetectedAndShrunk is the acceptance demo: a fault
// injected into exactly one checker leg (the 2-worker tiled run, i.e. a
// simulated tiling-scheduler bug) is caught by the tiled-bit-identity
// checker and shrunk to a minimal ready-to-run reproducer that still
// fails.
func TestBrokenKernelDetectedAndShrunk(t *testing.T) {
	cfg := Config{
		Tamper: func(leg string, energy *grid.Field2D) {
			if leg != "tiled-w2" {
				return
			}
			b := energy.Grid.Interior()
			// One cell, one ULP-scale nudge: far below every relative
			// tolerance, visible only to the bit-identity contract.
			energy.Set(b.X0, b.Y0, energy.At(b.X0, b.Y0)*(1+1e-9))
		},
	}
	cr := CheckDeck(tamperDeck(t), cfg)
	if cr.Failure == nil {
		t.Fatal("tampered tiled-w2 leg was not detected")
	}
	if cr.Failure.Checker != "tiled-bit-identity" {
		t.Fatalf("caught by %q, want tiled-bit-identity (detail: %s)", cr.Failure.Checker, cr.Failure.Detail)
	}
	if !strings.Contains(cr.Failure.Detail, "expected bit-identical") {
		t.Errorf("detail %q does not state the bit-identity contract", cr.Failure.Detail)
	}
	if cr.Failure.ShrinkAttempts == 0 {
		t.Error("shrinker recorded no attempts")
	}

	// The shrunk reproducer must be a runnable deck...
	shrunk, err := deck.ParseString(cr.Failure.Shrunk)
	if err != nil {
		t.Fatalf("shrunk reproducer does not parse: %v\n%s", err, cr.Failure.Shrunk)
	}
	// ...that still trips the same checker...
	re := CheckDeck(shrunk, cfg)
	if re.Failure == nil || re.Failure.Checker != "tiled-bit-identity" {
		t.Fatalf("shrunk deck no longer reproduces the failure: %+v", re.Failure)
	}
	// ...and is minimal: the fault fires on every candidate, so the
	// shrinker must reach the floors — mesh halved to the minimum, one
	// step, background state only.
	if shrunk.XCells != 6 || shrunk.YCells != 6 {
		t.Errorf("shrunk mesh %dx%d, want 6x6", shrunk.XCells, shrunk.YCells)
	}
	if shrunk.Steps() != 1 {
		t.Errorf("shrunk steps = %d, want 1", shrunk.Steps())
	}
	if len(shrunk.States) != 1 {
		t.Errorf("shrunk states = %d, want 1", len(shrunk.States))
	}
}

// TestTamperedBaseTripsConservation: a fault in the base leg must be
// caught by the physics checkers, not just cross-leg comparisons — the
// re-summarised internal energy exposes it as a conservation violation.
func TestTamperedBaseTripsConservation(t *testing.T) {
	cfg := Config{
		Tamper: func(leg string, energy *grid.Field2D) {
			if leg != "base" {
				return
			}
			b := energy.Grid.Interior()
			energy.Set(b.X0, b.Y0, energy.At(b.X0, b.Y0)+1)
		},
	}
	cr := CheckDeck(tamperDeck(t), cfg)
	if cr.Failure == nil {
		t.Fatal("tampered base leg was not detected")
	}
	if cr.Failure.Checker != "conserve" {
		t.Fatalf("caught by %q, want conserve (detail: %s)", cr.Failure.Checker, cr.Failure.Detail)
	}
}

// TestShrinkReachesFloors: with an always-failing predicate the shrinker
// must strip every axis down to its floor and stay within budget.
func TestShrinkReachesFloors(t *testing.T) {
	d := tamperDeck(t)
	d.Solver = "ppcg"
	d.Precond = "jac_diag"
	d.Pipelined = true
	d.SplitSweeps = true
	d.FusedDots = true
	d.HaloDepth = 3
	d.Tiling = true
	d.TileX, d.TileY = 4, 4
	d.XCells, d.YCells = 24, 24
	d.UseDeflation = true
	d.DeflationBlocks = 4
	d.DeflationLevels = 2
	if err := d.Validate(); err != nil {
		t.Fatalf("setup deck invalid: %v", err)
	}

	const budget = 60
	shrunk, attempts := Shrink(d, func(*deck.Deck) bool { return true }, budget)
	if attempts > budget {
		t.Errorf("attempts = %d, above budget %d", attempts, budget)
	}
	if shrunk.XCells != 6 || shrunk.YCells != 6 {
		t.Errorf("mesh %dx%d, want 6x6", shrunk.XCells, shrunk.YCells)
	}
	if shrunk.Steps() != 1 {
		t.Errorf("steps = %d, want 1", shrunk.Steps())
	}
	if len(shrunk.States) != 1 {
		t.Errorf("states = %d, want 1", len(shrunk.States))
	}
	if shrunk.UseDeflation || shrunk.Pipelined || shrunk.SplitSweeps || shrunk.FusedDots || shrunk.Tiling {
		t.Errorf("options not fully stripped: %+v", shrunk)
	}
	if shrunk.Precond != "none" || shrunk.HaloDepth != 1 || shrunk.Solver != "cg" {
		t.Errorf("precond/halo/solver not at floors: %s %d %s", shrunk.Precond, shrunk.HaloDepth, shrunk.Solver)
	}
	// The original deck is untouched throughout.
	if d.XCells != 24 || !d.UseDeflation || d.Solver != "ppcg" {
		t.Error("Shrink mutated its input deck")
	}
}
