// Package deflate implements the deflation technique the paper lists as
// future work (§VII): "Using deflation techniques [27] we will be able to
// represent these low energy modes in a series of nested lower dimensional
// sub-spaces." The reference is Frank & Vuik's subdomain deflation: the
// deflation space W is spanned by piecewise-constant indicator vectors of
// a coarse bx×by block partition of the mesh, which captures exactly the
// smooth, low-energy modes that make κ(A) grow with mesh size.
//
// Deflated CG iterates on the projected operator P·A with
//
//	P = I − A·W·E⁻¹·Wᵀ,   E = Wᵀ·A·W  (the coarse Galerkin matrix),
//
// so the effective spectrum has its smallest eigenvalues removed and the
// iteration count drops accordingly. E is tiny (one row per subdomain) and
// factored once by dense Cholesky.
//
// A regime note the experiments make precise: for the per-step operator
// A = I + Δt·L the smallest eigenvalue is pinned at 1 (L has a zero mode
// under zero-flux boundaries), so deflation only pays when Δt·λ₂(L) ≳ 1 —
// very stiff steps, near-steady solves, or the "extreme condition numbers"
// the paper's §VIII flags as the open robustness question. For TeaLeaf's
// production Δt the low modes sit at 1+ε and there is nothing to deflate;
// the tests cover both regimes.
//
// The implementation is deliberately single-rank: it exists to demonstrate
// and test the future-work direction; the multi-level nested variant the
// paper sketches is beyond its scope.
package deflate

import (
	"errors"
	"fmt"
	"math"

	"tealeaf/internal/grid"
	"tealeaf/internal/kernels"
	"tealeaf/internal/par"
	"tealeaf/internal/stencil"
)

// Deflation holds the subdomain partition, the Cholesky-factored coarse
// matrix, and scratch space for projections.
type Deflation struct {
	op     *stencil.Operator2D
	pool   *par.Pool
	bx, by int // subdomain counts in x and y
	// blocks[c] is the cell rectangle of coarse block c.
	blocks []grid.Bounds
	// chol is the Cholesky factor of E = WᵀAW.
	chol *Cholesky
	// scratch fields.
	wv, av *grid.Field2D
	// coarse-space scratch vectors.
	cr, cl []float64
}

// New builds the deflation operator for op with a bx×by coarse partition.
func New(pool *par.Pool, op *stencil.Operator2D, bx, by int) (*Deflation, error) {
	g := op.Grid
	if bx < 1 || by < 1 {
		return nil, errors.New("deflate: need at least one subdomain per direction")
	}
	if bx > g.NX || by > g.NY {
		return nil, fmt.Errorf("deflate: %dx%d subdomains exceed %dx%d cells", bx, by, g.NX, g.NY)
	}
	if pool == nil {
		pool = par.Serial
	}
	part, err := grid.NewPartition(g.NX, g.NY, bx, by)
	if err != nil {
		return nil, err
	}
	d := &Deflation{
		op: op, pool: pool, bx: bx, by: by,
		wv: grid.NewField2D(g), av: grid.NewField2D(g),
	}
	nc := bx * by
	d.blocks = make([]grid.Bounds, nc)
	for c := 0; c < nc; c++ {
		e := part.ExtentOf(c)
		d.blocks[c] = grid.Bounds{X0: e.X0, X1: e.X1, Y0: e.Y0, Y1: e.Y1}
	}
	d.cr = make([]float64, nc)
	d.cl = make([]float64, nc)

	// Assemble E = WᵀAW column by column: apply A to each indicator and
	// integrate over every block. E is symmetric and (for the TeaLeaf
	// operator) positive definite: A is SPD and W has full rank.
	e := make([][]float64, nc)
	for c := range e {
		e[c] = make([]float64, nc)
	}
	in := g.Interior()
	for c := 0; c < nc; c++ {
		d.wv.Zero()
		d.wv.FillBounds(d.blocks[c], 1)
		d.wv.ReflectHalos(1) // indicator extended by zero-flux mirror
		d.op.Apply(pool, in, d.wv, d.av)
		for c2 := 0; c2 < nc; c2++ {
			e[c2][c] = d.av.SumBounds(d.blocks[c2])
		}
	}
	chol, err := NewCholesky(e)
	if err != nil {
		return nil, fmt.Errorf("deflate: coarse matrix not SPD: %w", err)
	}
	d.chol = chol
	return d, nil
}

// Subdomains returns the coarse-space dimension bx·by.
func (d *Deflation) Subdomains() int { return len(d.blocks) }

// restrict computes out = Wᵀ v (block sums over the interior).
func (d *Deflation) restrict(v *grid.Field2D, out []float64) {
	for c, b := range d.blocks {
		out[c] = v.SumBounds(b)
	}
}

// prolongInto adds W·λ into dst.
func (d *Deflation) prolongInto(lambda []float64, dst *grid.Field2D) {
	g := dst.Grid
	for c, b := range d.blocks {
		v := lambda[c]
		for k := b.Y0; k < b.Y1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				dst.Data[base+j] += v
			}
		}
	}
}

// CoarseCorrect applies u += W·E⁻¹·Wᵀ·r: the coarse-grid solve that
// zeroes the deflation-space component of the residual.
func (d *Deflation) CoarseCorrect(r, u *grid.Field2D) {
	d.restrict(r, d.cr)
	d.chol.Solve(d.cr, d.cl)
	d.prolongInto(d.cl, u)
}

// ProjectW computes w ← P·w = w − A·W·E⁻¹·Wᵀ·w in place. Costs one coarse
// solve plus one matrix application on a piecewise-constant field.
func (d *Deflation) ProjectW(w *grid.Field2D) {
	g := d.op.Grid
	in := g.Interior()
	d.restrict(w, d.cr)
	d.chol.Solve(d.cr, d.cl)
	d.wv.Zero()
	d.prolongInto(d.cl, d.wv)
	d.wv.ReflectHalos(1)
	d.op.Apply(d.pool, in, d.wv, d.av)
	kernels.Axpy(d.pool, in, -1, d.av, w)
}

// SolveDeflatedCG runs deflated CG on A·u = rhs: a coarse correction
// aligns the initial residual with the deflated subspace, every matvec is
// projected by P, and a final coarse correction recovers the exact
// solution. Returns (iterations, final relative residual, converged).
func (d *Deflation) SolveDeflatedCG(u, rhs *grid.Field2D, tol float64, maxIters int) (int, float64, bool) {
	g := d.op.Grid
	in := g.Interior()
	pool := d.pool
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 10000
	}

	r := grid.NewField2D(g)
	w := grid.NewField2D(g)
	p := grid.NewField2D(g)

	residual := func() {
		u.ReflectHalos(1)
		d.op.Residual(pool, in, u, rhs, r)
	}
	residual()
	// Initial coarse correction: Wᵀ r = 0 afterwards.
	d.CoarseCorrect(r, u)
	residual()
	rr := kernels.Norm2Sq(pool, in, r)
	rr0 := rr
	if rr0 == 0 {
		return 0, 0, true
	}
	kernels.Copy(pool, in, p, r)

	iters := 0
	for ; iters < maxIters; iters++ {
		p.ReflectHalos(1)
		d.op.Apply(pool, in, p, w)
		d.ProjectW(w) // w = P·A·p
		pw := kernels.Dot(pool, in, p, w)
		if pw <= 0 {
			break // P·A is only semi-definite outside the deflated space
		}
		alpha := rr / pw
		kernels.Axpy(pool, in, alpha, p, u)
		kernels.Axpy(pool, in, -alpha, w, r)
		rrNew := kernels.Norm2Sq(pool, in, r)
		if rrNew <= tol*tol*rr0 {
			rr = rrNew
			iters++
			break
		}
		beta := rrNew / rr
		rr = rrNew
		kernels.Xpay(pool, in, r, beta, p)
	}
	// Final coarse correction mops up the deflation-space component the
	// projected iteration cannot see.
	residual()
	d.CoarseCorrect(r, u)
	residual()
	rel := relNorm(kernels.Norm2Sq(pool, in, r), rr0)
	return iters, rel, rel <= tol*10 // allow the projection round-off margin
}

func relNorm(rr, rr0 float64) float64 {
	if rr0 == 0 {
		return 0
	}
	return math.Sqrt(rr / rr0)
}
