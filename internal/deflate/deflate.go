// Package deflate implements the deflation technique the paper lists as
// future work (§VII): "Using deflation techniques [27] we will be able to
// represent these low energy modes in a series of nested lower dimensional
// sub-spaces." The reference is Frank & Vuik's subdomain deflation: the
// deflation space W is spanned by piecewise-constant indicator vectors of
// a coarse block partition of the GLOBAL mesh, which captures exactly the
// smooth, low-energy modes that make κ(A) grow with mesh size.
//
// Deflated CG iterates on the projected operator P·A with
//
//	P = I − A·W·E⁻¹·Wᵀ,   E = Wᵀ·A·W  (the coarse Galerkin matrix),
//
// so the effective spectrum has its smallest eigenvalues removed and the
// iteration count drops accordingly. E is tiny (one row per subdomain);
// with Config.Levels == 1 it is factored once by dense Cholesky, and with
// Levels > 1 it is itself deflated over a nested blocks-of-blocks
// aggregation — the paper's "series of nested lower dimensional
// sub-spaces" — with the dense solve only at the top of the hierarchy.
//
// The projector is fully distributed and dimension-agnostic: restriction
// and prolongation are rank-local over the owning rank's partition extents
// (2D Deflation and 3D Deflation3D), the coarse Galerkin matrix and every
// per-iteration coarse residual are summed across ranks with a single
// comm.AllReduceSumN round, and — because that reduction is
// commutative-order deterministic on every backend — each rank factors
// the same tiny matrix bit-identically and the coarse solve never needs a
// broadcast. Indicator values in halo cells are filled analytically from
// the global block geometry (a halo cell's global coordinate decides its
// block), so assembling E needs no halo exchange at all.
//
// A regime note the experiments make precise: for the per-step operator
// A = I + Δt·L the smallest eigenvalue is pinned at 1 (L has a zero mode
// under zero-flux boundaries), so deflation only pays when Δt·λ₂(L) ≳ 1 —
// very stiff steps, near-steady solves, or the "extreme condition numbers"
// the paper's §VIII flags as the open robustness question. For TeaLeaf's
// production Δt the low modes sit at 1+ε and there is nothing to deflate;
// the tests cover both regimes.
package deflate

import (
	"errors"
	"fmt"
	"math"

	"tealeaf/internal/comm"
	"tealeaf/internal/grid"
	"tealeaf/internal/kernels"
	"tealeaf/internal/par"
	"tealeaf/internal/stencil"
)

// Config selects the coarse-space geometry: the block partition of the
// global mesh and the depth of the nested hierarchy.
type Config struct {
	// BX, BY, BZ are the coarse subdomain counts per direction over the
	// GLOBAL mesh (BZ is ignored in 2D). Each must be at least 1 and at
	// most the global cell count in its direction.
	BX, BY, BZ int
	// Levels is the nested-hierarchy depth (default 1): 1 solves the
	// coarse matrix E directly by dense Cholesky; L > 1 deflates E itself
	// over a blocks-of-blocks aggregation (halving each direction per
	// level, dense solve only at the top). Each extra level needs at
	// least one direction with more than one block to aggregate.
	Levels int
}

func (cfg Config) withDefaults() Config {
	if cfg.Levels <= 0 {
		cfg.Levels = 1
	}
	return cfg
}

// Geometry locates a rank's sub-grid within the global 2D mesh. The zero
// value means "the local grid is the whole mesh" (single-rank runs).
type Geometry struct {
	// GlobalNX, GlobalNY are the global interior cell counts.
	GlobalNX, GlobalNY int
	// OffsetX, OffsetY are the global coordinates of the local interior
	// cell (0,0).
	OffsetX, OffsetY int
}

// Deflation is the 2D coarse-space projector: the subdomain partition,
// the hierarchy-solved coarse Galerkin matrix (replicated identically on
// every rank), and scratch space for rank-local projections.
type Deflation struct {
	op     *stencil.Operator2D
	pool   *par.Pool
	c      comm.Communicator
	bx, by int
	// bpart is the BX×BY coarse block partition of the global mesh;
	// block c covers the global cell rectangle bpart.ExtentOf(c).
	bpart *grid.Partition
	// local[c] is the local-coordinate intersection of block c with this
	// rank's interior (possibly empty).
	local []grid.Bounds
	// xblk[j+hp] / yblk[k+hp] map the local padded coordinate
	// j ∈ [-hp, NX+hp) (k ∈ [-hp, NY+hp), hp = Grid.Halo) to its block
	// axis index, with out-of-mesh halo coordinates clamped to the mesh
	// edge — which reproduces the zero-flux mirror on physical boundaries
	// and the true neighbour block across rank boundaries. Covering the
	// full halo (not just one cell) lets ProjectWBounds fill indicator
	// values over the matrix-powers extended bounds.
	xblk, yblk []int
	hp         int
	// coarse applies E⁻¹: dense Cholesky at Levels == 1, the nested
	// blocks-of-blocks hierarchy above.
	coarse *hierarchy
	// geom and levels are retained so Refresh can re-assemble E when the
	// operator's entries change.
	geom   Geometry
	levels int
	// scratch fields and coarse-space vectors.
	wv, av *grid.Field2D
	cr, cl []float64
}

// New builds the deflation projector for op over a cfg.BX × cfg.BY block
// partition of the global mesh described by geom. Every rank of a
// distributed solve must call it collectively (it performs one allreduce
// to assemble the coarse matrix); c must be the solve's communicator. A
// nil pool runs serial, a nil c is a fresh single-rank communicator, and
// the zero geom treats the local grid as the whole mesh.
func New(pool *par.Pool, c comm.Communicator, op *stencil.Operator2D, geom Geometry, cfg Config) (*Deflation, error) {
	g := op.Grid
	cfg = cfg.withDefaults()
	if pool == nil {
		pool = par.Serial
	}
	if c == nil {
		c = comm.NewSerial()
	}
	if geom.GlobalNX == 0 && geom.GlobalNY == 0 {
		geom.GlobalNX, geom.GlobalNY = g.NX, g.NY
	}
	if cfg.BX < 1 || cfg.BY < 1 {
		return nil, errors.New("deflate: need at least one subdomain per direction")
	}
	if cfg.BX > geom.GlobalNX || cfg.BY > geom.GlobalNY {
		return nil, fmt.Errorf("deflate: %dx%d subdomains exceed the %dx%d global mesh",
			cfg.BX, cfg.BY, geom.GlobalNX, geom.GlobalNY)
	}
	if geom.OffsetX < 0 || geom.OffsetY < 0 ||
		geom.OffsetX+g.NX > geom.GlobalNX || geom.OffsetY+g.NY > geom.GlobalNY {
		return nil, fmt.Errorf("deflate: local %dx%d grid at offset (%d,%d) outside the %dx%d global mesh",
			g.NX, g.NY, geom.OffsetX, geom.OffsetY, geom.GlobalNX, geom.GlobalNY)
	}
	bpart, err := grid.NewPartition(geom.GlobalNX, geom.GlobalNY, cfg.BX, cfg.BY)
	if err != nil {
		return nil, err
	}
	d := &Deflation{
		op: op, pool: pool, c: c, bx: cfg.BX, by: cfg.BY, bpart: bpart,
		geom: geom, levels: cfg.Levels,
		wv: grid.NewField2D(g), av: grid.NewField2D(g),
	}
	nc := cfg.BX * cfg.BY
	d.cr = make([]float64, nc)
	d.cl = make([]float64, nc)

	// Per-axis block lookup tables over the full padded coordinate range.
	d.hp = g.Halo
	d.xblk = make([]int, g.NX+2*d.hp)
	for j := -d.hp; j < g.NX+d.hp; j++ {
		d.xblk[j+d.hp] = bpart.ColumnOf(clampInt(geom.OffsetX+j, 0, geom.GlobalNX-1))
	}
	d.yblk = make([]int, g.NY+2*d.hp)
	for k := -d.hp; k < g.NY+d.hp; k++ {
		d.yblk[k+d.hp] = bpart.RowOf(clampInt(geom.OffsetY+k, 0, geom.GlobalNY-1))
	}

	// Local intersection of each global block with this rank's interior.
	d.local = make([]grid.Bounds, nc)
	in := g.Interior()
	for cb := 0; cb < nc; cb++ {
		e := bpart.ExtentOf(cb)
		d.local[cb] = intersect2D(grid.Bounds{
			X0: e.X0 - geom.OffsetX, X1: e.X1 - geom.OffsetX,
			Y0: e.Y0 - geom.OffsetY, Y1: e.Y1 - geom.OffsetY,
		}, in)
	}

	if err := d.assemble(); err != nil {
		return nil, err
	}
	return d, nil
}

// assemble builds and factors the coarse Galerkin matrix E = WᵀAW from
// the current operator. The local contribution is assembled column by
// column: the indicator of block c is filled analytically over the
// one-cell ring the operator reads (halo values come from the global
// block geometry, so no exchange is needed), A is applied on the block's
// one-cell expansion intersected with this rank, and the result is
// integrated over the (at most 3×3) adjacent blocks — A·W_c vanishes
// beyond them. One AllReduceSumN round then hands every rank the
// identical global E. Collective.
func (d *Deflation) assemble() error {
	g := d.op.Grid
	geom := d.geom
	nc := d.bx * d.by
	eflat := make([]float64, nc*nc)
	for cb := 0; cb < nc; cb++ {
		ge := d.bpart.ExtentOf(cb)
		bApply := grid.Bounds{
			X0: ge.X0 - geom.OffsetX - 1, X1: ge.X1 - geom.OffsetX + 1,
			Y0: ge.Y0 - geom.OffsetY - 1, Y1: ge.Y1 - geom.OffsetY + 1,
		}.ClampInterior(g)
		if bApply.Empty() {
			continue
		}
		fill := bApply.Expand(1, g)
		cx, cy := cb%d.bx, cb/d.bx
		for k := fill.Y0; k < fill.Y1; k++ {
			base := g.Index(0, k)
			inBlockY := d.yblk[k+d.hp] == cy
			for j := fill.X0; j < fill.X1; j++ {
				v := 0.0
				if inBlockY && d.xblk[j+d.hp] == cx {
					v = 1
				}
				d.wv.Data[base+j] = v
			}
		}
		d.op.Apply(d.pool, bApply, d.wv, d.av)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				cx2, cy2 := cx+dx, cy+dy
				if cx2 < 0 || cx2 >= d.bx || cy2 < 0 || cy2 >= d.by {
					continue
				}
				cb2 := cy2*d.bx + cx2
				lb := intersect2D(d.local[cb2], bApply)
				if !lb.Empty() {
					eflat[cb2*nc+cb] += d.av.SumBounds(lb)
				}
			}
		}
	}
	eflat = d.c.AllReduceSumN(eflat)

	aggs, err := aggregations(d.levels, d.bx, d.by)
	if err != nil {
		return err
	}
	h, err := newHierarchy(eflat, nc, aggs)
	if err != nil {
		return fmt.Errorf("deflate: coarse matrix not SPD: %w", err)
	}
	d.coarse = h
	return nil
}

// Refresh rebinds the projector to op — typically the operator rebuilt
// for a new time step — and re-assembles and re-factors the coarse
// matrix only when changed reports that the operator's entries actually
// changed. The flag MUST be rank-uniform: assemble is collective, so
// ranks disagreeing on it would deadlock. With changed == false the
// cached E (and its factorization) is reused and Refresh performs no
// communication at all — a time step whose operator is unchanged skips
// the assembly reduction round entirely.
func (d *Deflation) Refresh(op *stencil.Operator2D, changed bool) error {
	if op.Grid != d.op.Grid {
		return errors.New("deflate: Refresh requires an operator on the same grid")
	}
	d.op = op
	if !changed {
		return nil
	}
	return d.assemble()
}

// Subdomains returns the coarse-space dimension BX·BY.
func (d *Deflation) Subdomains() int { return len(d.local) }

// Levels returns the coarse-hierarchy depth (1 = dense two-level solve).
func (d *Deflation) Levels() int { return d.coarse.levels() }

// restrict computes the LOCAL contribution to Wᵀ v (block sums over this
// rank's interior) into out.
func (d *Deflation) restrict(v *grid.Field2D, out []float64) {
	for c, b := range d.local {
		if b.Empty() {
			out[c] = 0
		} else {
			out[c] = v.SumBounds(b)
		}
	}
}

// solveCoarse computes λ = E⁻¹·Wᵀ·v into d.cl: a rank-local restriction,
// one AllReduceSumN round (the only communication a projection performs),
// and the replicated hierarchy solve every rank executes identically.
func (d *Deflation) solveCoarse(v *grid.Field2D) {
	d.restrict(v, d.cr)
	global := d.c.AllReduceSumN(d.cr)
	d.coarse.Solve(global, d.cl)
}

// CoarseCorrect applies u += W·E⁻¹·Wᵀ·r: the coarse-grid solve that
// zeroes the deflation-space component of the residual. Collective —
// every rank must call it with its local fields.
func (d *Deflation) CoarseCorrect(r, u *grid.Field2D) {
	d.solveCoarse(r)
	g := u.Grid
	for c, b := range d.local {
		if b.Empty() {
			continue
		}
		v := d.cl[c]
		for k := b.Y0; k < b.Y1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				u.Data[base+j] += v
			}
		}
	}
}

// ProjectW computes w ← P·w = w − A·W·E⁻¹·Wᵀ·w in place: one coarse
// solve (a single reduction round) plus one rank-local matrix application
// on a piecewise-constant field. Collective.
func (d *Deflation) ProjectW(w *grid.Field2D) {
	d.ProjectWBounds(d.op.Grid.Interior(), w)
}

// ProjectWBounds is ProjectW with the fine-grid correction written over
// the extended bounds b ⊇ interior — the deep-halo form the solver's
// matrix-powers CG cycles need (solver.deepDeflator). The restriction
// Wᵀ·w stays interior-only (cells beyond the interior replicate another
// rank's interior and would be double-counted), so the coarse solve —
// and hence λ — is identical for every b; only the region receiving the
// A·W·λ correction grows. b.Expand(1) must fit the padded grid, which
// holds for any extended bounds of a depth ≤ Grid.Halo cycle.
func (d *Deflation) ProjectWBounds(b grid.Bounds, w *grid.Field2D) {
	d.solveCoarse(w)
	d.applyCorrection(b, w)
}

// deflReduceTag is the reduction tag of the split-phase coarse round
// (comm.AllReduceSumNStartTagged): distinct from tag 0, which blocking
// rounds and the solver's split-phase scalar round use, so both can be
// in flight at once.
const deflReduceTag = 1

// ProjectWBoundsStart is the first half of ProjectWBounds: it restricts
// w and posts the coarse reduction round split-phase on the projector's
// dedicated tag, returning the in-flight handle. Callers overlap the
// round with other work — the solver's temporal-blocked pipelined CG
// keeps it in flight alongside the iteration's scalar round
// (solver.splitDeflator) — and must hand the handle to
// ProjectWBoundsFinish, or Finish and discard it on paths that abandon
// the projection, before any blocking collective; every rank must do
// the same. Collective.
func (d *Deflation) ProjectWBoundsStart(w *grid.Field2D) comm.ReduceHandle {
	d.restrict(w, d.cr)
	return d.c.AllReduceSumNStartTagged(deflReduceTag, d.cr)
}

// ProjectWBoundsFinish completes a projection posted by
// ProjectWBoundsStart: finishes the coarse round, runs the replicated
// hierarchy solve every rank executes identically, and applies the
// fine-grid correction over b. The result is bit-identical to
// ProjectWBounds(b, w) for the same w — the tagged round folds exactly
// like the blocking one.
func (d *Deflation) ProjectWBoundsFinish(h comm.ReduceHandle, b grid.Bounds, w *grid.Field2D) {
	d.coarse.Solve(h.Finish(), d.cl)
	d.applyCorrection(b, w)
}

// applyCorrection subtracts the fine-grid correction A·W·λ (λ = d.cl,
// left by the coarse solve) from w over b. W·λ is filled analytically
// over the one-cell ring A reads; block membership of halo cells comes
// from the clamped global coordinate, so rank-internal ring values are
// exact without an exchange.
func (d *Deflation) applyCorrection(b grid.Bounds, w *grid.Field2D) {
	g := d.op.Grid
	fill := b.Expand(1, g)
	for k := fill.Y0; k < fill.Y1; k++ {
		base := g.Index(0, k)
		rowBase := d.yblk[k+d.hp] * d.bx
		for j := fill.X0; j < fill.X1; j++ {
			d.wv.Data[base+j] = d.cl[rowBase+d.xblk[j+d.hp]]
		}
	}
	d.op.Apply(d.pool, b, d.wv, d.av)
	kernels.Axpy(d.pool, b, -1, d.av, w)
}

// SolveDeflatedCG runs deflated CG on A·u = rhs — the package's
// self-contained reference loop, kept as the simplest executable
// statement of the algorithm (the production path composes the same
// projector into the solver package's fused and classic engines). It is
// rank-correct: halos flow through the communicator the projector was
// built with and every dot product is globally reduced. A coarse
// correction aligns the initial residual with the deflated subspace,
// every matvec is projected by P, and a final coarse correction recovers
// the exact solution. Returns (iterations, final relative residual,
// converged); a non-nil error reports a communicator failure.
func (d *Deflation) SolveDeflatedCG(u, rhs *grid.Field2D, tol float64, maxIters int) (int, float64, bool, error) {
	g := d.op.Grid
	in := g.Interior()
	pool := d.pool
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 10000
	}

	r := grid.NewField2D(g)
	w := grid.NewField2D(g)
	p := grid.NewField2D(g)

	residual := func() error {
		if err := d.c.Exchange(1, u); err != nil {
			return err
		}
		d.op.Residual(pool, in, u, rhs, r)
		return nil
	}
	if err := residual(); err != nil {
		return 0, 0, false, err
	}
	// Initial coarse correction: Wᵀ r = 0 afterwards.
	d.CoarseCorrect(r, u)
	if err := residual(); err != nil {
		return 0, 0, false, err
	}
	rr := d.c.AllReduceSum(kernels.Norm2Sq(pool, in, r))
	rr0 := rr
	if rr0 == 0 {
		return 0, 0, true, nil
	}
	kernels.Copy(pool, in, p, r)

	iters := 0
	for ; iters < maxIters; iters++ {
		if err := d.c.Exchange(1, p); err != nil {
			return iters, 0, false, err
		}
		d.op.Apply(pool, in, p, w)
		d.ProjectW(w) // w = P·A·p
		pw := d.c.AllReduceSum(kernels.Dot(pool, in, p, w))
		if pw <= 0 {
			break // P·A is only semi-definite outside the deflated space
		}
		alpha := rr / pw
		kernels.Axpy(pool, in, alpha, p, u)
		kernels.Axpy(pool, in, -alpha, w, r)
		rrNew := d.c.AllReduceSum(kernels.Norm2Sq(pool, in, r))
		if rrNew <= tol*tol*rr0 {
			rr = rrNew
			iters++
			break
		}
		beta := rrNew / rr
		rr = rrNew
		kernels.Xpay(pool, in, r, beta, p)
	}
	// Final coarse correction mops up the deflation-space component the
	// projected iteration cannot see.
	if err := residual(); err != nil {
		return iters, 0, false, err
	}
	d.CoarseCorrect(r, u)
	if err := residual(); err != nil {
		return iters, 0, false, err
	}
	rel := relNorm(d.c.AllReduceSum(kernels.Norm2Sq(pool, in, r)), rr0)
	return iters, rel, rel <= tol*10, nil // allow the projection round-off margin
}

func relNorm(rr, rr0 float64) float64 {
	if rr0 == 0 {
		return 0
	}
	return math.Sqrt(rr / rr0)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func intersect2D(a, b grid.Bounds) grid.Bounds {
	return grid.Bounds{
		X0: max(a.X0, b.X0), X1: min(a.X1, b.X1),
		Y0: max(a.Y0, b.Y0), Y1: min(a.Y1, b.Y1),
	}
}
