package deflate

import (
	"errors"
	"fmt"
	"math"
)

// Cholesky is a dense LLᵀ factorisation of a small SPD matrix — sized for
// the coarse Galerkin matrix E = WᵀAW, which has one row per subdomain.
type Cholesky struct {
	n int
	l [][]float64 // lower triangle, row-major
}

// NewCholesky factors the symmetric positive-definite matrix a (which is
// not modified). Returns an error on non-square input or a non-positive
// pivot (matrix not SPD).
func NewCholesky(a [][]float64) (*Cholesky, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("deflate: empty matrix")
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("deflate: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, i+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("deflate: non-positive pivot %v at row %d", sum, i)
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// N returns the matrix dimension.
func (c *Cholesky) N() int { return c.n }

// Solve computes x = A⁻¹ b via forward/back substitution. b and x must
// have length N; they may alias.
func (c *Cholesky) Solve(b, x []float64) {
	if len(b) != c.n || len(x) != c.n {
		panic(fmt.Sprintf("deflate: solve size mismatch: %d/%d vs %d", len(b), len(x), c.n))
	}
	// Forward: L y = b.
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i][k] * x[k]
		}
		x[i] = sum / c.l[i][i]
	}
	// Back: Lᵀ x = y.
	for i := c.n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l[k][i] * x[k]
		}
		x[i] = sum / c.l[i][i]
	}
}
