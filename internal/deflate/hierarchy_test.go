package deflate

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD builds a well-conditioned random SPD matrix BᵀB + n·I, flat
// row-major.
func randSPD(rng *rand.Rand, n int) []float64 {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = rng.NormFloat64()
		}
	}
	e := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k][i] * b[k][j]
			}
			if i == j {
				s += float64(n)
			}
			e[i*n+j] = s
		}
	}
	return e
}

func TestAggregationsShapes(t *testing.T) {
	// 4x4 blocks, one nesting: ceil-halved to 2x2, x fastest.
	aggs, err := aggregations(2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || len(aggs[0]) != 16 {
		t.Fatalf("aggs shape: %v", aggs)
	}
	// Block (x,y) -> super (x/2, y/2) over a 2-wide super grid.
	for idx, a := range aggs[0] {
		x, y := idx%4, idx/4
		if want := (y/2)*2 + x/2; a != want {
			t.Errorf("agg[%d] = %d, want %d", idx, a, want)
		}
	}
	// Odd dimensions ceil-halve: 5x3 -> 3x2.
	aggs, err = aggregations(2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxA := 0
	for _, a := range aggs[0] {
		if a > maxA {
			maxA = a
		}
	}
	if maxA+1 != 6 {
		t.Errorf("5x3 aggregated to %d superblocks, want 6", maxA+1)
	}
	// Exhausted hierarchy errors.
	if _, err := aggregations(2, 1, 1); err == nil {
		t.Error("aggregating a 1x1 block grid must error")
	}
	if _, err := aggregations(4, 2, 2); err == nil {
		t.Error("4 levels over a 2x2 grid must error")
	}
	// 3D aggregation covers all three directions.
	aggs, err = aggregations(2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for idx, a := range aggs[0] {
		if a != 0 {
			t.Errorf("2x2x2 -> 1x1x1: agg[%d] = %d, want 0", idx, a)
		}
	}
}

// The nested balancing solve must reproduce the dense Cholesky solution
// to near round-off at every hierarchy depth — that accuracy is what
// keeps the outer projection exact.
func TestHierarchyNestedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 16 // a 4x4 block grid
	e := randSPD(rng, n)
	dense, err := newHierarchy(append([]float64(nil), e...), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, levels := range []int{2, 3} {
		aggs, err := aggregations(levels, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		nested, err := newHierarchy(append([]float64(nil), e...), n, aggs)
		if err != nil {
			t.Fatal(err)
		}
		if nested.levels() != levels {
			t.Fatalf("levels() = %d, want %d", nested.levels(), levels)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		dense.Solve(b, x1)
		nested.Solve(b, x2)
		for i := range x1 {
			if d := math.Abs(x1[i] - x2[i]); d > 1e-10*math.Max(1, math.Abs(x1[i])) {
				t.Errorf("levels=%d i=%d: dense %v nested %v", levels, i, x1[i], x2[i])
			}
		}
	}
}

func TestHierarchyRejectsIndefinite(t *testing.T) {
	if _, err := newHierarchy([]float64{1, 2, 2, 1}, 2, nil); err == nil {
		t.Error("indefinite matrix must error at the dense level")
	}
}
