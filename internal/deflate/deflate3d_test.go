package deflate

import (
	"math"
	"math/rand"
	"testing"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
	"tealeaf/internal/solver"
	"tealeaf/internal/stencil"
)

// stiffOperator3D builds the 3D near-steady operator A = I + Δt·L with
// Δt·λ₂(L) ≫ 1 on the unit cube.
func stiffOperator3D(t *testing.T, n int) *stencil.Operator3D {
	t.Helper()
	g := grid.UnitGrid3D(n, n, n, 2)
	den := grid.NewField3D(g)
	den.Fill(1)
	den.ReflectHalos(g.Halo)
	op, err := stencil.BuildOperator3D(par.Serial, den, 10.0, stencil.Conductivity, stencil.AllPhysical3D)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestDeflation3DValidation(t *testing.T) {
	op := stiffOperator3D(t, 12)
	if _, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 0, BY: 3, BZ: 3}); err == nil {
		t.Error("zero subdomains must error")
	}
	if _, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 24, BY: 3, BZ: 3}); err == nil {
		t.Error("more subdomains than cells must error")
	}
	if _, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 1, BY: 1, BZ: 1, Levels: 2}); err == nil {
		t.Error("levels beyond the hierarchy must error")
	}
	d, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 3, BY: 3, BZ: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subdomains() != 27 {
		t.Errorf("subdomains = %d", d.Subdomains())
	}
	if d.Levels() != 1 {
		t.Errorf("levels = %d", d.Levels())
	}
}

// Wᵀ(P·A·p) = 0 for any p: the 3D projection must annihilate the coarse
// component of a projected matvec, exactly like the 2D invariant.
func TestProjectW3DKillsCoarseComponent(t *testing.T) {
	op := stiffOperator3D(t, 12)
	defl, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 3, BY: 3, BZ: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := op.Grid
	p := grid.NewField3D(g)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				p.Set(i, j, k, rng.NormFloat64())
			}
		}
	}
	p.ReflectHalos(1)
	ap := grid.NewField3D(g)
	op.Apply(par.Serial, g.Interior(), p, ap)
	defl.ProjectW(ap)
	sums := make([]float64, defl.Subdomains())
	defl.restrict(ap, sums)
	var norm float64
	for _, v := range ap.Data {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for c, s := range sums {
		if math.Abs(s) > 1e-9*math.Max(1, norm) {
			t.Errorf("block %d: Wᵀ(PAp) = %v, want 0", c, s)
		}
	}
}

// 3D deflated CG through the solver composition: converges, matches the
// plain solution, and cuts iterations in the stiff regime — for both the
// two-level and nested hierarchies.
func TestDeflation3DReducesIterations(t *testing.T) {
	const n = 16
	op := stiffOperator3D(t, n)
	g := op.Grid
	rhs := grid.NewField3D(g)
	for k := 0; k < n/4; k++ {
		for j := 0; j < n/4; j++ {
			for i := 0; i < n/4; i++ {
				rhs.Set(i, j, k, 1)
			}
		}
	}
	plain := solver.Problem3D{Op: op, U: rhs.Clone(), RHS: rhs}
	plainRes, err := solver.SolveCG3D(plain, solver.Options{Tol: 1e-9})
	if err != nil || !plainRes.Converged {
		t.Fatalf("plain 3D CG: %v %+v", err, plainRes)
	}
	for _, levels := range []int{1, 2} {
		defl, err := New3D(par.Serial, nil, op, Geometry3D{}, Config{BX: 4, BY: 4, BZ: 4, Levels: levels})
		if err != nil {
			t.Fatal(err)
		}
		p := solver.Problem3D{Op: op, U: rhs.Clone(), RHS: rhs}
		res, err := solver.SolveCG3D(p, solver.Options{Tol: 1e-9, Deflation3D: defl})
		if err != nil || !res.Converged {
			t.Fatalf("deflated 3D CG (levels=%d): %v %+v", levels, err, res)
		}
		if float64(res.Iterations) > 0.7*float64(plainRes.Iterations) {
			t.Errorf("levels=%d: deflated 3D CG took %d iterations, plain %d — expected ≥30%% reduction",
				levels, res.Iterations, plainRes.Iterations)
		}
		if d := p.U.MaxDiff(plain.U); d > 1e-6 {
			t.Errorf("levels=%d: deflated 3D solution differs by %v", levels, d)
		}
	}
}
