package deflate

import (
	"fmt"
)

// hierarchy applies E⁻¹ for a coarse Galerkin matrix: dense Cholesky at
// the top level, and at every level below a PCG iteration whose
// preconditioner combines the next-coarser aggregation solve with a
// Jacobi smoother — the balancing form of deflation (M⁻¹ = W·E₂⁻¹·Wᵀ +
// D⁻¹), which removes the same low-energy blocks-of-blocks modes the
// projector form would but keeps the TRUE residual in the recurrence.
// That distinction matters: the projected form accumulates solution
// drift that only an exact coarse solve cancels, and the resulting
// catastrophic cancellation caps its accuracy far above what the outer
// projector needs; the balancing form converges to round-off. This is
// the paper's §VII "series of nested lower dimensional sub-spaces" made
// concrete: each level's smooth modes are handled one level down, and
// only the top of the chain is factored densely. All levels are dense,
// tiny, fully replicated and iterated to near machine precision with no
// communication, so every rank applies the identical (deterministic)
// coarse inverse.
type hierarchy struct {
	n int
	// e is the level's dense matrix, row-major n×n.
	e []float64
	// chol is the top-level factorisation (nil on nested levels).
	chol *Cholesky
	// agg maps this level's index to the next-coarser one (nil at the top).
	agg  []int
	next *hierarchy
	nc   int // next level's dimension
	// invdiag is 1/diag(E), the smoother half of the level preconditioner.
	invdiag []float64
	// scratch for the PCG level solve.
	r, p, w, z, cr, cl []float64
}

// newHierarchy builds the solver chain for the dense matrix e (flattened
// n×n, consumed — the hierarchy keeps it for its matvecs) with the given
// aggregation maps, one per nesting step; an empty aggs list yields the
// plain dense Cholesky.
func newHierarchy(e []float64, n int, aggs [][]int) (*hierarchy, error) {
	h := &hierarchy{n: n, e: e}
	if len(aggs) == 0 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = e[i*n : (i+1)*n]
		}
		chol, err := NewCholesky(m)
		if err != nil {
			return nil, err
		}
		h.chol = chol
		return h, nil
	}
	agg := aggs[0]
	if len(agg) != n {
		return nil, fmt.Errorf("deflate: aggregation map has %d entries for a %d-block level", len(agg), n)
	}
	nc := 0
	for _, a := range agg {
		if a >= nc {
			nc = a + 1
		}
	}
	// Galerkin projection onto the aggregated space: E₂ = W₂ᵀ·E·W₂, i.e.
	// block sums of E over the aggregation.
	e2 := make([]float64, nc*nc)
	for i := 0; i < n; i++ {
		ai := agg[i] * nc
		row := e[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			e2[ai+agg[j]] += row[j]
		}
	}
	next, err := newHierarchy(e2, nc, aggs[1:])
	if err != nil {
		return nil, err
	}
	h.agg, h.next, h.nc = agg, next, nc
	h.invdiag = make([]float64, n)
	for i := 0; i < n; i++ {
		d := e[i*n+i]
		if d <= 0 {
			return nil, fmt.Errorf("deflate: non-positive diagonal %v at coarse row %d", d, i)
		}
		h.invdiag[i] = 1 / d
	}
	h.r = make([]float64, n)
	h.p = make([]float64, n)
	h.w = make([]float64, n)
	h.z = make([]float64, n)
	h.cr = make([]float64, nc)
	h.cl = make([]float64, nc)
	return h, nil
}

// levels returns the depth of the chain (1 = dense solve only).
func (h *hierarchy) levels() int {
	if h.next == nil {
		return 1
	}
	return 1 + h.next.levels()
}

// Solve computes x = E⁻¹·b. b and x must have length n and must not
// alias on nested levels (the top-level Cholesky allows it).
func (h *hierarchy) Solve(b, x []float64) {
	if h.chol != nil {
		h.chol.Solve(b, x)
		return
	}
	h.solveNested(b, x)
}

// matvec computes out = E·v.
func (h *hierarchy) matvec(v, out []float64) {
	n := h.n
	for i := 0; i < n; i++ {
		row := h.e[i*n : (i+1)*n]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
}

// precondApply computes z = M⁻¹·r with the balancing two-level
// preconditioner M⁻¹ = W₂·E₂⁻¹·W₂ᵀ + D⁻¹: the aggregated solve handles
// the level's smooth modes (recursively, down to the dense top) and the
// Jacobi term the rest.
func (h *hierarchy) precondApply(r, z []float64) {
	for i := range h.cr {
		h.cr[i] = 0
	}
	for i, a := range h.agg {
		h.cr[a] += r[i]
	}
	h.next.Solve(h.cr, h.cl)
	for i, a := range h.agg {
		z[i] = h.cl[a] + h.invdiag[i]*r[i]
	}
}

// solveNested runs PCG on E·x = b with the balancing preconditioner. The
// recurrence carries the TRUE residual (no projection drift), so the
// iteration converges to round-off; the level matrices are tiny, fully
// deterministic and communication-free, so every rank computes the
// identical result and the outer projection stays exact to the 1e-14
// target.
func (h *hierarchy) solveNested(b, x []float64) {
	n := h.n
	const tol = 1e-14
	for i := range x {
		x[i] = 0
	}
	copy(h.r, b)
	rr0 := dotDense(h.r, h.r)
	if rr0 == 0 {
		return
	}
	h.precondApply(h.r, h.z)
	copy(h.p, h.z)
	rz := dotDense(h.r, h.z)
	rr := rr0
	bestRR := rr
	for it := 0; it < 10*n && rr > tol*tol*rr0; it++ {
		h.matvec(h.p, h.w)
		pw := dotDense(h.p, h.w)
		if pw <= 0 {
			break
		}
		alpha := rz / pw
		for i := 0; i < n; i++ {
			x[i] += alpha * h.p[i]
			h.r[i] -= alpha * h.w[i]
		}
		rr = dotDense(h.r, h.r)
		if rr >= bestRR && rr <= 1e-24*rr0 {
			// Round-off floor: no further progress is possible.
			break
		}
		if rr < bestRR {
			bestRR = rr
		}
		h.precondApply(h.r, h.z)
		rzNew := dotDense(h.r, h.z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			h.p[i] = h.z[i] + beta*h.p[i]
		}
	}
}

func dotDense(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// aggregations builds the per-level blocks-of-blocks maps for a coarse
// block grid with the given per-direction counts (x fastest, matching the
// block index layout): levels−1 maps, each halving every direction that
// still has more than one block. It errors when the hierarchy cannot
// reach the requested depth.
func aggregations(levels int, dims ...int) ([][]int, error) {
	var aggs [][]int
	cur := append([]int(nil), dims...)
	for step := 1; step < levels; step++ {
		total := 1
		reducible := false
		for _, d := range cur {
			total *= d
			if d > 1 {
				reducible = true
			}
		}
		if !reducible {
			return nil, fmt.Errorf("deflate: %d deflation levels exceed the coarse hierarchy of a %s block partition (level %d is already a single block)",
				levels, dimsString(dims), step)
		}
		next := make([]int, len(cur))
		for i, d := range cur {
			next[i] = (d + 1) / 2
		}
		agg := make([]int, total)
		for idx := 0; idx < total; idx++ {
			// Decompose idx in the current mixed radix (x fastest), halve
			// each coordinate, recompose in the next radix.
			rem := idx
			coarse := 0
			stride := 1
			for i, d := range cur {
				c := rem % d
				rem /= d
				coarse += (c / 2) * stride
				stride *= next[i]
			}
			agg[idx] = coarse
		}
		aggs = append(aggs, agg)
		cur = next
	}
	return aggs, nil
}

func dimsString(dims []int) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s
}
