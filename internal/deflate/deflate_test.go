package deflate

import (
	"math"
	"math/rand"
	"testing"

	"tealeaf/internal/comm"
	"tealeaf/internal/grid"
	"tealeaf/internal/kernels"
	"tealeaf/internal/par"
	"tealeaf/internal/problem"
	"tealeaf/internal/solver"
	"tealeaf/internal/stencil"
)

// --- Cholesky ---

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] = LLᵀ with L = [[2,0],[1,√2]].
	c, err := NewCholesky([][]float64{{4, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	c.Solve([]float64{8, 7}, x) // A·[1.25, 1.5]ᵀ? verify by residual instead
	if r0 := 4*x[0] + 2*x[1] - 8; math.Abs(r0) > 1e-12 {
		t.Errorf("row 0 residual %v", r0)
	}
	if r1 := 2*x[0] + 3*x[1] - 7; math.Abs(r1) > 1e-12 {
		t.Errorf("row 1 residual %v", r1)
	}
	if c.N() != 2 {
		t.Error("N wrong")
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 8, 20} {
		// SPD via BᵀB + n·I.
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, n)
			for j := range b[i] {
				b[i][j] = rng.NormFloat64()
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				for k := 0; k < n; k++ {
					a[i][j] += b[k][i] * b[k][j]
				}
				if i == j {
					a[i][j] += float64(n)
				}
			}
		}
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		c.Solve(rhs, x)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += a[i][j] * x[j]
			}
			if math.Abs(sum-rhs[i]) > 1e-9 {
				t.Fatalf("n=%d: residual %v at row %d", n, sum-rhs[i], i)
			}
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := NewCholesky(nil); err == nil {
		t.Error("empty matrix must error")
	}
	if _, err := NewCholesky([][]float64{{1, 2}}); err == nil {
		t.Error("non-square must error")
	}
	if _, err := NewCholesky([][]float64{{-1}}); err == nil {
		t.Error("negative pivot must error")
	}
	// Indefinite 2x2.
	if _, err := NewCholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("indefinite matrix must error")
	}
}

// --- Deflation ---

func pipeOperator(t *testing.T, n int) *stencil.Operator2D {
	t.Helper()
	d := problem.CrookedPipeDeck(n, n)
	g := grid.MustGrid2D(n, n, 2, d.XMin, d.XMax, d.YMin, d.YMax)
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	if err := problem.Paint(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	den.ReflectHalos(g.Halo)
	op, err := stencil.BuildOperator2D(par.Serial, den, d.InitialTimestep, stencil.Conductivity, stencil.AllPhysical)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func pipeRHS(t *testing.T, op *stencil.Operator2D, n int) *grid.Field2D {
	t.Helper()
	d := problem.CrookedPipeDeck(n, n)
	g := op.Grid
	den := grid.NewField2D(g)
	en := grid.NewField2D(g)
	if err := problem.Paint(d.States, den, en); err != nil {
		t.Fatal(err)
	}
	rhs := grid.NewField2D(g)
	problem.EnergyToU(den, en, rhs)
	return rhs
}

func TestDeflationValidation(t *testing.T) {
	op := pipeOperator(t, 16)
	if _, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 0, BY: 4}); err == nil {
		t.Error("zero subdomains must error")
	}
	if _, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 32, BY: 4}); err == nil {
		t.Error("more subdomains than cells must error")
	}
	d, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 4, BY: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subdomains() != 16 {
		t.Errorf("subdomains = %d", d.Subdomains())
	}
}

func TestCoarseMatrixSPD(t *testing.T) {
	// New already Cholesky-factors E; building on several operators must
	// succeed (E SPD) including high-contrast ones.
	for _, n := range []int{16, 48} {
		op := pipeOperator(t, n)
		if _, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 4, BY: 4}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestCoarseCorrectZeroesCoarseResidual(t *testing.T) {
	op := pipeOperator(t, 32)
	g := op.Grid
	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 4, BY: 4})
	if err != nil {
		t.Fatal(err)
	}
	rhs := pipeRHS(t, op, 32)
	u := rhs.Clone()
	r := grid.NewField2D(g)
	u.ReflectHalos(1)
	op.Residual(par.Serial, g.Interior(), u, rhs, r)
	defl.CoarseCorrect(r, u)
	u.ReflectHalos(1)
	op.Residual(par.Serial, g.Interior(), u, rhs, r)
	// Wᵀ r must vanish: block sums of the corrected residual are ~0.
	sums := make([]float64, defl.Subdomains())
	defl.restrict(r, sums)
	norm := r.Norm2Interior()
	for c, s := range sums {
		if math.Abs(s) > 1e-10*math.Max(1, norm) {
			t.Errorf("block %d residual sum %v not deflated", c, s)
		}
	}
}

func TestProjectWKillsCoarseComponent(t *testing.T) {
	op := pipeOperator(t, 24)
	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 3, BY: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := op.Grid
	w := grid.NewField2D(g)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			w.Set(j, k, rng.NormFloat64())
		}
	}
	// After w ← P w... note P projects against the A·W range; the
	// invariant is Wᵀ(P·A·p) = 0 for any p, so test with w = A·p.
	p := w.Clone()
	p.ReflectHalos(1)
	ap := grid.NewField2D(g)
	op.Apply(par.Serial, g.Interior(), p, ap)
	defl.ProjectW(ap)
	sums := make([]float64, defl.Subdomains())
	defl.restrict(ap, sums)
	norm := ap.Norm2Interior()
	for c, s := range sums {
		if math.Abs(s) > 1e-9*math.Max(1, norm) {
			t.Errorf("block %d: Wᵀ(PAp) = %v, want 0", c, s)
		}
	}
}

func TestDeflatedCGMatchesPlainCG(t *testing.T) {
	n := 48
	op := pipeOperator(t, n)
	rhs := pipeRHS(t, op, n)

	// Reference: plain CG via the solver package.
	ref := solver.Problem{Op: op, U: rhs.Clone(), RHS: rhs}
	res, err := solver.SolveCG(ref, solver.Options{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("reference CG: %v %+v", err, res)
	}

	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 4, BY: 4})
	if err != nil {
		t.Fatal(err)
	}
	u := rhs.Clone()
	iters, rel, ok, err := defl.SolveDeflatedCG(u, rhs, 1e-11, 10000)
	if err != nil || !ok {
		t.Fatalf("deflated CG did not converge: %d iters, rel %v, err %v", iters, rel, err)
	}
	if d := u.MaxDiff(ref.U); d > 1e-7 {
		t.Errorf("deflated solution differs from CG by %v", d)
	}
}

// stiffOperator builds A = I + Δt·L with Δt·λ₂(L) ≫ 1: the near-steady
// regime where the deflatable low-energy modes are actual outliers.
func stiffOperator(t *testing.T, n int) *stencil.Operator2D {
	t.Helper()
	g := grid.MustGrid2D(n, n, 2, 0, 1, 0, 1)
	den := grid.NewField2D(g)
	den.Fill(1)
	op, err := stencil.BuildOperator2D(par.Serial, den, 10.0, stencil.Conductivity, stencil.AllPhysical)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestDeflationReducesIterationsInStiffRegime(t *testing.T) {
	// The point of the future-work §VII direction: removing the low-energy
	// subdomain modes cuts the iteration count. For A = I + Δt·L this
	// requires Δt·λ₂ ≳ 1 (see the package comment); a unit-domain operator
	// with Δt = 10 is deep in that regime.
	n := 64
	op := stiffOperator(t, n)
	g := op.Grid
	rhs := grid.NewField2D(g)
	rhs.FillBounds(grid.Bounds{X0: 0, X1: n / 4, Y0: 0, Y1: n / 4}, 1)

	plain := solver.Problem{Op: op, U: rhs.Clone(), RHS: rhs}
	res, err := solver.SolveCG(plain, solver.Options{Tol: 1e-9})
	if err != nil || !res.Converged {
		t.Fatalf("plain CG: %v", err)
	}

	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 8, BY: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := rhs.Clone()
	iters, _, ok, err := defl.SolveDeflatedCG(u, rhs, 1e-9, 10000)
	if err != nil || !ok {
		t.Fatalf("deflated CG did not converge: %v", err)
	}
	if float64(iters) > 0.7*float64(res.Iterations) {
		t.Errorf("deflated CG took %d iterations, plain CG %d — expected ≥30%% reduction", iters, res.Iterations)
	}
	// Solutions agree.
	if d := u.MaxDiff(plain.U); d > 1e-6 {
		t.Errorf("deflated solution differs by %v", d)
	}
}

func TestDeflationNeutralInTimeStepRegime(t *testing.T) {
	// With TeaLeaf's production Δt, λmin(A) = 1 dominates the low end of
	// the spectrum and deflation must not change the iteration count by
	// more than a few percent in either direction — the regime insight
	// documented in the package comment.
	n := 96
	op := pipeOperator(t, n)
	rhs := pipeRHS(t, op, n)
	plain := solver.Problem{Op: op, U: rhs.Clone(), RHS: rhs}
	res, err := solver.SolveCG(plain, solver.Options{Tol: 1e-9})
	if err != nil || !res.Converged {
		t.Fatalf("plain CG: %v", err)
	}
	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 8, BY: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := rhs.Clone()
	iters, _, ok, err := defl.SolveDeflatedCG(u, rhs, 1e-9, 10000)
	if err != nil || !ok {
		t.Fatalf("deflated CG did not converge: %v", err)
	}
	if iters > res.Iterations+5 {
		t.Errorf("deflation made things worse: %d vs %d", iters, res.Iterations)
	}
}

func TestDeflatedCGZeroRHS(t *testing.T) {
	op := pipeOperator(t, 16)
	g := op.Grid
	u := grid.NewField2D(g)
	rhs := grid.NewField2D(g)
	defl, err := New(par.Serial, nil, op, Geometry{}, Config{BX: 2, BY: 2})
	if err != nil {
		t.Fatal(err)
	}
	iters, rel, ok, err := defl.SolveDeflatedCG(u, rhs, 1e-10, 100)
	if err != nil || !ok || iters != 0 || rel != 0 {
		t.Errorf("zero RHS: iters=%d rel=%v ok=%v err=%v", iters, rel, ok, err)
	}
	if kernels.Norm2(par.Serial, g.Interior(), u) != 0 {
		t.Error("zero RHS must leave u at zero")
	}
}

// The reference deflated CG loop, rank-invariant: the same stiff problem
// decomposed over 2x2 goroutine ranks must converge in the same number
// of iterations (±1) to the same solution as the single-rank run, with
// the coarse space built collectively over the global mesh.
func TestSolveDeflatedCGRankInvariance(t *testing.T) {
	const n = 32
	const tol = 1e-10

	// Single-rank baseline.
	opS := stiffOperator(t, n)
	gS := opS.Grid
	rhsS := grid.NewField2D(gS)
	rhsS.FillBounds(grid.Bounds{X0: 0, X1: n / 4, Y0: 0, Y1: n / 4}, 1)
	deflS, err := New(par.Serial, nil, opS, Geometry{}, Config{BX: 4, BY: 4})
	if err != nil {
		t.Fatal(err)
	}
	uS := rhsS.Clone()
	itersS, _, okS, err := deflS.SolveDeflatedCG(uS, rhsS, tol, 10000)
	if err != nil || !okS {
		t.Fatalf("serial deflated CG did not converge: %v", err)
	}

	part := grid.MustPartition(n, n, 2, 2)
	gg := grid.MustGrid2D(n, n, 2, 0, 1, 0, 1)
	gathered := grid.NewField2D(gg)
	iters := make([]int, part.Ranks())
	err = comm.Run(part, func(c *comm.RankComm) error {
		ext := part.ExtentOf(c.Rank())
		sub, err := gg.Sub(ext.X0, ext.X1, ext.Y0, ext.Y1)
		if err != nil {
			return err
		}
		den := grid.NewField2D(sub)
		den.Fill(1)
		if err := c.Exchange(sub.Halo, den); err != nil {
			return err
		}
		phys := c.Physical()
		op, err := stencil.BuildOperator2D(par.Serial, den, 10.0, stencil.Conductivity,
			stencil.PhysicalSides{Left: phys.Left, Right: phys.Right, Down: phys.Down, Up: phys.Up})
		if err != nil {
			return err
		}
		rhs := grid.NewField2D(sub)
		for k := 0; k < sub.NY; k++ {
			for j := 0; j < sub.NX; j++ {
				if ext.X0+j < n/4 && ext.Y0+k < n/4 {
					rhs.Set(j, k, 1)
				}
			}
		}
		defl, err := New(par.Serial, c, op,
			Geometry{GlobalNX: n, GlobalNY: n, OffsetX: ext.X0, OffsetY: ext.Y0},
			Config{BX: 4, BY: 4})
		if err != nil {
			return err
		}
		u := rhs.Clone()
		it, _, ok, err := defl.SolveDeflatedCG(u, rhs, tol, 10000)
		if err != nil {
			return err
		}
		if !ok {
			t.Errorf("rank %d: distributed deflated CG did not converge", c.Rank())
		}
		iters[c.Rank()] = it
		var dst *grid.Field2D
		if c.Rank() == 0 {
			dst = gathered
		}
		return c.GatherInterior(u, dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, it := range iters {
		if d := it - itersS; d < -1 || d > 1 {
			t.Errorf("rank %d: %d iterations vs serial %d (want ±1)", r, it, itersS)
		}
	}
	if d := gathered.MaxDiff(uS); d > 1e-10 {
		t.Errorf("distributed deflated solution differs from serial by %v", d)
	}
}
