package deflate

import (
	"errors"
	"fmt"

	"tealeaf/internal/comm"
	"tealeaf/internal/grid"
	"tealeaf/internal/kernels"
	"tealeaf/internal/par"
	"tealeaf/internal/stencil"
)

// Geometry3D locates a rank's sub-grid within the global 3D mesh. The
// zero value means "the local grid is the whole mesh".
type Geometry3D struct {
	// GlobalNX, GlobalNY, GlobalNZ are the global interior cell counts.
	GlobalNX, GlobalNY, GlobalNZ int
	// OffsetX, OffsetY, OffsetZ are the global coordinates of the local
	// interior cell (0,0,0).
	OffsetX, OffsetY, OffsetZ int
}

// Deflation3D is the 3D coarse-space projector — the 7-point twin of
// Deflation, with a BX×BY×BZ box partition of the global mesh and the
// same rank-local restriction / single-allreduce / replicated-hierarchy
// structure.
type Deflation3D struct {
	op         *stencil.Operator3D
	pool       *par.Pool
	c          comm.Communicator
	bx, by, bz int
	bpart      *grid.Partition3D
	// local[c] is the local-coordinate intersection of block c with this
	// rank's interior (possibly empty).
	local []grid.Bounds3D
	// xblk[i+hp] / yblk[j+hp] / zblk[k+hp] map full-halo padded
	// coordinates to block axis indices, clamped to the mesh (see the 2D
	// tables).
	xblk, yblk, zblk []int
	hp               int
	coarse           *hierarchy
	// geom and levels are retained for Refresh re-assembly.
	geom   Geometry3D
	levels int
	wv, av *grid.Field3D
	cr, cl []float64
}

// New3D builds the 3D deflation projector for op over a cfg.BX × cfg.BY ×
// cfg.BZ box partition of the global mesh described by geom. Collective:
// every rank of a distributed solve must call it (one allreduce assembles
// the coarse matrix). A nil pool runs serial, a nil c is a fresh
// single-rank communicator, and the zero geom treats the local grid as
// the whole mesh.
func New3D(pool *par.Pool, c comm.Communicator, op *stencil.Operator3D, geom Geometry3D, cfg Config) (*Deflation3D, error) {
	g := op.Grid
	cfg = cfg.withDefaults()
	if pool == nil {
		pool = par.Serial
	}
	if c == nil {
		c = comm.NewSerial()
	}
	if geom.GlobalNX == 0 && geom.GlobalNY == 0 && geom.GlobalNZ == 0 {
		geom.GlobalNX, geom.GlobalNY, geom.GlobalNZ = g.NX, g.NY, g.NZ
	}
	if cfg.BX < 1 || cfg.BY < 1 || cfg.BZ < 1 {
		return nil, errors.New("deflate: need at least one subdomain per direction")
	}
	if cfg.BX > geom.GlobalNX || cfg.BY > geom.GlobalNY || cfg.BZ > geom.GlobalNZ {
		return nil, fmt.Errorf("deflate: %dx%dx%d subdomains exceed the %dx%dx%d global mesh",
			cfg.BX, cfg.BY, cfg.BZ, geom.GlobalNX, geom.GlobalNY, geom.GlobalNZ)
	}
	if geom.OffsetX < 0 || geom.OffsetY < 0 || geom.OffsetZ < 0 ||
		geom.OffsetX+g.NX > geom.GlobalNX || geom.OffsetY+g.NY > geom.GlobalNY ||
		geom.OffsetZ+g.NZ > geom.GlobalNZ {
		return nil, fmt.Errorf("deflate: local %dx%dx%d grid at offset (%d,%d,%d) outside the %dx%dx%d global mesh",
			g.NX, g.NY, g.NZ, geom.OffsetX, geom.OffsetY, geom.OffsetZ,
			geom.GlobalNX, geom.GlobalNY, geom.GlobalNZ)
	}
	bpart, err := grid.NewPartition3D(geom.GlobalNX, geom.GlobalNY, geom.GlobalNZ, cfg.BX, cfg.BY, cfg.BZ)
	if err != nil {
		return nil, err
	}
	d := &Deflation3D{
		op: op, pool: pool, c: c, bx: cfg.BX, by: cfg.BY, bz: cfg.BZ, bpart: bpart,
		geom: geom, levels: cfg.Levels,
		wv: grid.NewField3D(g), av: grid.NewField3D(g),
	}
	nc := cfg.BX * cfg.BY * cfg.BZ
	d.cr = make([]float64, nc)
	d.cl = make([]float64, nc)

	d.hp = g.Halo
	d.xblk = make([]int, g.NX+2*d.hp)
	for i := -d.hp; i < g.NX+d.hp; i++ {
		d.xblk[i+d.hp] = bpart.ColumnOf(clampInt(geom.OffsetX+i, 0, geom.GlobalNX-1))
	}
	d.yblk = make([]int, g.NY+2*d.hp)
	for j := -d.hp; j < g.NY+d.hp; j++ {
		d.yblk[j+d.hp] = bpart.RowOf(clampInt(geom.OffsetY+j, 0, geom.GlobalNY-1))
	}
	d.zblk = make([]int, g.NZ+2*d.hp)
	for k := -d.hp; k < g.NZ+d.hp; k++ {
		d.zblk[k+d.hp] = bpart.PlaneOf(clampInt(geom.OffsetZ+k, 0, geom.GlobalNZ-1))
	}

	d.local = make([]grid.Bounds3D, nc)
	in := g.Interior()
	for cb := 0; cb < nc; cb++ {
		e := bpart.ExtentOf(cb)
		d.local[cb] = intersect3D(grid.Bounds3D{
			X0: e.X0 - geom.OffsetX, X1: e.X1 - geom.OffsetX,
			Y0: e.Y0 - geom.OffsetY, Y1: e.Y1 - geom.OffsetY,
			Z0: e.Z0 - geom.OffsetZ, Z1: e.Z1 - geom.OffsetZ,
		}, in)
	}

	if err := d.assemble(); err != nil {
		return nil, err
	}
	return d, nil
}

// assemble builds and factors E = WᵀAW from the current operator, column
// by column; see the 2D assembly for the structure. A·W_c vanishes
// outside the block's one-cell expansion, so only the (at most 3×3×3)
// adjacent blocks receive entries, and one AllReduceSumN round
// replicates E exactly. Collective.
func (d *Deflation3D) assemble() error {
	g := d.op.Grid
	geom := d.geom
	nc := d.bx * d.by * d.bz
	eflat := make([]float64, nc*nc)
	for cb := 0; cb < nc; cb++ {
		ge := d.bpart.ExtentOf(cb)
		bApply := grid.Bounds3D{
			X0: ge.X0 - geom.OffsetX - 1, X1: ge.X1 - geom.OffsetX + 1,
			Y0: ge.Y0 - geom.OffsetY - 1, Y1: ge.Y1 - geom.OffsetY + 1,
			Z0: ge.Z0 - geom.OffsetZ - 1, Z1: ge.Z1 - geom.OffsetZ + 1,
		}.ClampInterior(g)
		if bApply.Empty() {
			continue
		}
		fill := bApply.Expand(1, g)
		cx := cb % d.bx
		cy := (cb / d.bx) % d.by
		cz := cb / (d.bx * d.by)
		for k := fill.Z0; k < fill.Z1; k++ {
			inZ := d.zblk[k+d.hp] == cz
			for j := fill.Y0; j < fill.Y1; j++ {
				base := g.Index(0, j, k)
				inYZ := inZ && d.yblk[j+d.hp] == cy
				for i := fill.X0; i < fill.X1; i++ {
					v := 0.0
					if inYZ && d.xblk[i+d.hp] == cx {
						v = 1
					}
					d.wv.Data[base+i] = v
				}
			}
		}
		d.op.Apply(d.pool, bApply, d.wv, d.av)
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					cx2, cy2, cz2 := cx+dx, cy+dy, cz+dz
					if cx2 < 0 || cx2 >= d.bx || cy2 < 0 || cy2 >= d.by || cz2 < 0 || cz2 >= d.bz {
						continue
					}
					cb2 := (cz2*d.by+cy2)*d.bx + cx2
					lb := intersect3D(d.local[cb2], bApply)
					if !lb.Empty() {
						eflat[cb2*nc+cb] += d.av.SumBounds(lb)
					}
				}
			}
		}
	}
	eflat = d.c.AllReduceSumN(eflat)

	aggs, err := aggregations(d.levels, d.bx, d.by, d.bz)
	if err != nil {
		return err
	}
	h, err := newHierarchy(eflat, nc, aggs)
	if err != nil {
		return fmt.Errorf("deflate: coarse matrix not SPD: %w", err)
	}
	d.coarse = h
	return nil
}

// Refresh rebinds the projector to op and re-assembles the coarse matrix
// only when changed is true — the 3D twin of Deflation.Refresh, with the
// same rank-uniformity requirement on the flag.
func (d *Deflation3D) Refresh(op *stencil.Operator3D, changed bool) error {
	if op.Grid != d.op.Grid {
		return errors.New("deflate: Refresh requires an operator on the same grid")
	}
	d.op = op
	if !changed {
		return nil
	}
	return d.assemble()
}

// Subdomains returns the coarse-space dimension BX·BY·BZ.
func (d *Deflation3D) Subdomains() int { return len(d.local) }

// Levels returns the coarse-hierarchy depth (1 = dense two-level solve).
func (d *Deflation3D) Levels() int { return d.coarse.levels() }

// restrict computes the LOCAL contribution to Wᵀ v into out.
func (d *Deflation3D) restrict(v *grid.Field3D, out []float64) {
	for c, b := range d.local {
		if b.Empty() {
			out[c] = 0
		} else {
			out[c] = v.SumBounds(b)
		}
	}
}

// solveCoarse computes λ = E⁻¹·Wᵀ·v into d.cl with one reduction round.
func (d *Deflation3D) solveCoarse(v *grid.Field3D) {
	d.restrict(v, d.cr)
	global := d.c.AllReduceSumN(d.cr)
	d.coarse.Solve(global, d.cl)
}

// CoarseCorrect applies u += W·E⁻¹·Wᵀ·r. Collective.
func (d *Deflation3D) CoarseCorrect(r, u *grid.Field3D) {
	d.solveCoarse(r)
	g := u.Grid
	for c, b := range d.local {
		if b.Empty() {
			continue
		}
		v := d.cl[c]
		for k := b.Z0; k < b.Z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				base := g.Index(0, j, k)
				for i := b.X0; i < b.X1; i++ {
					u.Data[base+i] += v
				}
			}
		}
	}
}

// ProjectW computes w ← P·w = w − A·W·E⁻¹·Wᵀ·w in place: one coarse
// solve (a single reduction round) plus one rank-local 7-point
// application on the analytically filled piecewise-constant field.
// Collective.
func (d *Deflation3D) ProjectW(w *grid.Field3D) {
	d.ProjectWBounds(d.op.Grid.Interior(), w)
}

// ProjectWBounds is ProjectW with the fine-grid correction written over
// the extended bounds b ⊇ interior — the deep-halo form of the 2D twin,
// with the restriction kept interior-only for the same ownership reason.
func (d *Deflation3D) ProjectWBounds(b grid.Bounds3D, w *grid.Field3D) {
	d.solveCoarse(w)
	d.applyCorrection(b, w)
}

// ProjectWBoundsStart is the 3D twin of Deflation.ProjectWBoundsStart:
// restrict w and post the coarse round split-phase on the projector's
// tag, under the same finish-before-any-blocking-collective contract.
// Collective.
func (d *Deflation3D) ProjectWBoundsStart(w *grid.Field3D) comm.ReduceHandle {
	d.restrict(w, d.cr)
	return d.c.AllReduceSumNStartTagged(deflReduceTag, d.cr)
}

// ProjectWBoundsFinish completes a projection posted by
// ProjectWBoundsStart, bit-identical to ProjectWBounds(b, w) for the
// same w.
func (d *Deflation3D) ProjectWBoundsFinish(h comm.ReduceHandle, b grid.Bounds3D, w *grid.Field3D) {
	d.coarse.Solve(h.Finish(), d.cl)
	d.applyCorrection(b, w)
}

// applyCorrection subtracts the fine-grid correction A·W·λ (λ = d.cl,
// left by the coarse solve) from w over b, filling W·λ analytically
// over the one-cell shell A reads as in the 2D projector.
func (d *Deflation3D) applyCorrection(b grid.Bounds3D, w *grid.Field3D) {
	g := d.op.Grid
	fill := b.Expand(1, g)
	for k := fill.Z0; k < fill.Z1; k++ {
		zBase := d.zblk[k+d.hp] * d.by
		for j := fill.Y0; j < fill.Y1; j++ {
			base := g.Index(0, j, k)
			rowBase := (zBase + d.yblk[j+d.hp]) * d.bx
			for i := fill.X0; i < fill.X1; i++ {
				d.wv.Data[base+i] = d.cl[rowBase+d.xblk[i+d.hp]]
			}
		}
	}
	d.op.Apply(d.pool, b, d.wv, d.av)
	kernels.Axpy3D(d.pool, b, -1, d.av, w)
}

func intersect3D(a, b grid.Bounds3D) grid.Bounds3D {
	return grid.Bounds3D{
		X0: max(a.X0, b.X0), X1: min(a.X1, b.X1),
		Y0: max(a.Y0, b.Y0), Y1: min(a.Y1, b.Y1),
		Z0: max(a.Z0, b.Z0), Z1: min(a.Z1, b.Z1),
	}
}
