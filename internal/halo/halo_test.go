package halo

import (
	"testing"

	"tealeaf/internal/grid"
)

func TestNewScheduleValidation(t *testing.T) {
	g := grid.UnitGrid2D(8, 8, 4)
	if _, err := NewSchedule(g, 0, NoNeighbors); err == nil {
		t.Error("zero depth must error")
	}
	if _, err := NewSchedule(g, 5, NoNeighbors); err == nil {
		t.Error("depth beyond halo must error")
	}
	s, err := NewSchedule(g, 4, NoNeighbors)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 4 || s.StepsPerExchange() != 4 {
		t.Error("depth accessors wrong")
	}
}

func TestScheduleRequiresRefillFirst(t *testing.T) {
	g := grid.UnitGrid2D(8, 8, 4)
	s, _ := NewSchedule(g, 3, Sides{Left: true, Right: true, Down: true, Up: true})
	if _, ok := s.Next(); ok {
		t.Error("Next before Refill must fail")
	}
	s.Refill()
	if s.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", s.Remaining())
	}
}

func TestScheduleBoundsSequenceAllNeighbors(t *testing.T) {
	g := grid.UnitGrid2D(10, 10, 4)
	s, _ := NewSchedule(g, 3, Sides{Left: true, Right: true, Down: true, Up: true})
	s.Refill()
	want := []grid.Bounds{
		{X0: -2, X1: 12, Y0: -2, Y1: 12},
		{X0: -1, X1: 11, Y0: -1, Y1: 11},
		{X0: 0, X1: 10, Y0: 0, Y1: 10},
	}
	for i, w := range want {
		b, ok := s.Next()
		if !ok {
			t.Fatalf("step %d: exhausted early", i)
		}
		if b != w {
			t.Errorf("step %d: bounds %v, want %v", i, b, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("4th application must require a refill")
	}
	// Refill restarts the cycle identically.
	s.Refill()
	b, _ := s.Next()
	if b != want[0] {
		t.Errorf("after refill: %v, want %v", b, want[0])
	}
}

func TestSchedulePhysicalSidesNotExtended(t *testing.T) {
	g := grid.UnitGrid2D(8, 8, 4)
	// Corner rank: neighbours only on the right and up.
	s, _ := NewSchedule(g, 4, Sides{Right: true, Up: true})
	s.Refill()
	b, _ := s.Next()
	if b.X0 != 0 || b.Y0 != 0 {
		t.Errorf("physical sides must not extend: %v", b)
	}
	if b.X1 != 11 || b.Y1 != 11 {
		t.Errorf("neighbour sides must extend by depth-1: %v", b)
	}
	// Shrink only on extended sides.
	b, _ = s.Next()
	if b.X0 != 0 || b.X1 != 10 || b.Y0 != 0 || b.Y1 != 10 {
		t.Errorf("second step: %v", b)
	}
}

func TestScheduleDepth1EqualsClassic(t *testing.T) {
	g := grid.UnitGrid2D(8, 8, 2)
	s, _ := NewSchedule(g, 1, Sides{Left: true, Right: true, Down: true, Up: true})
	s.Refill()
	b, ok := s.Next()
	if !ok || b != g.Interior() {
		t.Errorf("depth-1 bounds = %v, want interior", b)
	}
	if _, ok := s.Next(); ok {
		t.Error("depth-1 buys exactly one application")
	}
}

func TestScheduleSingleRank(t *testing.T) {
	// No neighbours at all: bounds never extend, but the schedule still
	// counts applications (serial case — reflection stands in for fresh
	// data so each application is valid on the interior).
	g := grid.UnitGrid2D(8, 8, 4)
	s, _ := NewSchedule(g, 4, NoNeighbors)
	s.Refill()
	for i := 0; i < 4; i++ {
		b, ok := s.Next()
		if !ok || b != g.Interior() {
			t.Fatalf("step %d: %v ok=%v", i, b, ok)
		}
	}
}

func TestRedundantCells(t *testing.T) {
	g := grid.UnitGrid2D(10, 10, 4)
	// All neighbours, depth 3: extensions 2,1,0 →
	// (14² - 100) + (12² - 100) + 0 = 96 + 44 = 140.
	s, _ := NewSchedule(g, 3, Sides{Left: true, Right: true, Down: true, Up: true})
	if got := s.RedundantCells(); got != 140 {
		t.Errorf("RedundantCells = %d, want 140", got)
	}
	// Depth 1: no redundancy.
	s1, _ := NewSchedule(g, 1, Sides{Left: true, Right: true, Down: true, Up: true})
	if got := s1.RedundantCells(); got != 0 {
		t.Errorf("depth-1 RedundantCells = %d, want 0", got)
	}
	// No neighbours: no redundancy regardless of depth.
	s2, _ := NewSchedule(g, 4, NoNeighbors)
	if got := s2.RedundantCells(); got != 0 {
		t.Errorf("no-neighbour RedundantCells = %d, want 0", got)
	}
}

func TestRedundantCellsGrowsWithDepth(t *testing.T) {
	g := grid.UnitGrid2D(32, 32, 16)
	all := Sides{Left: true, Right: true, Down: true, Up: true}
	prev := -1
	for d := 1; d <= 16; d++ {
		s, err := NewSchedule(g, d, all)
		if err != nil {
			t.Fatal(err)
		}
		rc := s.RedundantCells()
		if rc <= prev && d > 1 {
			t.Errorf("depth %d: redundant cells %d not increasing (prev %d)", d, rc, prev)
		}
		prev = rc
	}
}
