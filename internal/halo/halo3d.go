package halo

import (
	"fmt"

	"tealeaf/internal/grid"
)

// Sides3D mirrors the six-neighbour adjacency of a 3D rank: true means
// there is a neighbour on that face (so the halo there carries fresh data
// and bounds may extend into it).
type Sides3D struct {
	Left, Right, Down, Up, Back, Front bool
}

// NoNeighbors3D is the single-rank case: nothing extends.
var NoNeighbors3D = Sides3D{}

// Schedule3D is the 3D matrix-powers schedule (§IV-C2 on the 7-point
// operator): after a depth-d exchange the first application runs on
// bounds extended d−1 cells into neighbour halos, shrinking by one cell
// per application until the extension is exhausted and a fresh exchange
// is required. Faces on the physical boundary never extend.
type Schedule3D struct {
	depth     int
	g         *grid.Grid3D
	interior  grid.Bounds3D
	adj       Sides3D
	remaining int
	cur       grid.Bounds3D
}

// NewSchedule3D builds a matrix-powers schedule for the given rank-local
// 3D grid, exchange depth, and neighbour adjacency. depth must fit in the
// grid's halo allocation.
func NewSchedule3D(g *grid.Grid3D, depth int, adj Sides3D) (*Schedule3D, error) {
	if depth < 1 || depth > g.Halo {
		return nil, fmt.Errorf("halo: schedule depth %d outside [1,%d]", depth, g.Halo)
	}
	s := &Schedule3D{depth: depth, g: g, interior: g.Interior(), adj: adj}
	// Until the first exchange, no extension is valid.
	s.remaining = 0
	return s, nil
}

// Depth returns the exchange depth.
func (s *Schedule3D) Depth() int { return s.depth }

// extended returns the fully extended bounds right after an exchange.
func (s *Schedule3D) extended() grid.Bounds3D {
	ext := s.depth - 1
	l, r, d, u, b, f := 0, 0, 0, 0, 0, 0
	if s.adj.Left {
		l = ext
	}
	if s.adj.Right {
		r = ext
	}
	if s.adj.Down {
		d = ext
	}
	if s.adj.Up {
		u = ext
	}
	if s.adj.Back {
		b = ext
	}
	if s.adj.Front {
		f = ext
	}
	return s.interior.ExpandSides(l, r, d, u, b, f, s.g)
}

// Refill marks a fresh depth-d exchange: the next d applications may run
// on progressively shrinking extended bounds.
func (s *Schedule3D) Refill() {
	s.remaining = s.depth
	s.cur = s.extended()
}

// Next returns the bounds for the next matrix application and true, or a
// zero Bounds3D and false if the halo is exhausted and Refill (after an
// exchange) is required first.
func (s *Schedule3D) Next() (grid.Bounds3D, bool) {
	if s.remaining == 0 {
		return grid.Bounds3D{}, false
	}
	b := s.cur
	s.remaining--
	s.cur = s.cur.ShrinkToward(1, s.interior)
	return b, true
}

// Remaining returns how many applications are left before a Refill is needed.
func (s *Schedule3D) Remaining() int { return s.remaining }

// StepsPerExchange returns the number of matrix applications one exchange
// buys, which is the depth.
func (s *Schedule3D) StepsPerExchange() int { return s.depth }

// RedundantCells returns the total number of cell updates a full cycle of
// depth applications performs beyond depth× the interior — the redundant
// computation the 3D matrix-powers kernel trades for fewer messages.
func (s *Schedule3D) RedundantCells() int {
	total := 0
	b := s.extended()
	for i := 0; i < s.depth; i++ {
		total += b.Cells()
		b = b.ShrinkToward(1, s.interior)
	}
	return total - s.depth*s.interior.Cells()
}
