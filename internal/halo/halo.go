// Package halo implements the matrix-powers kernel schedule of §IV-C2: the
// bookkeeping that lets the CPPCG inner loop perform depth-d matrix
// multiplications between halo exchanges by computing on extended bounds
// that shrink by one cell per step as the halo data goes stale.
//
// After a depth-d exchange, the first A·p runs on bounds extended by d−1
// beyond the interior (it reads one cell further, i.e. the full depth-d
// halo); each subsequent application shrinks the extension by one. When
// the extension is exhausted, a fresh exchange is needed. Sides on the
// physical domain boundary are never extended: their halos are zero-flux
// mirrors, not neighbour data, and the outer-boundary face coefficients
// are zero.
package halo

import (
	"fmt"

	"tealeaf/internal/grid"
)

// Sides mirrors the four-neighbour adjacency of a rank: true means there
// is a neighbour on that side (so the halo there carries fresh data and
// bounds may extend into it).
type Sides struct {
	Left, Right, Down, Up bool
}

// NoNeighbors is the single-rank case: nothing extends.
var NoNeighbors = Sides{}

// Schedule tracks how many matrix applications remain before the next
// exchange, and the bounds each application must run on.
type Schedule struct {
	depth    int
	g        *grid.Grid2D
	interior grid.Bounds
	adj      Sides
	// remaining applications before an exchange is required.
	remaining int
	// cur is the bounds for the next application.
	cur grid.Bounds
}

// NewSchedule builds a matrix-powers schedule for the given rank-local
// grid, exchange depth, and neighbour adjacency. depth must fit in the
// grid's halo allocation.
func NewSchedule(g *grid.Grid2D, depth int, adj Sides) (*Schedule, error) {
	if depth < 1 || depth > g.Halo {
		return nil, fmt.Errorf("halo: schedule depth %d outside [1,%d]", depth, g.Halo)
	}
	s := &Schedule{depth: depth, g: g, interior: g.Interior(), adj: adj}
	// Until the first exchange, no extension is valid.
	s.remaining = 0
	return s, nil
}

// Depth returns the exchange depth.
func (s *Schedule) Depth() int { return s.depth }

// Refill marks a fresh depth-d exchange: the next d applications may run
// on progressively shrinking extended bounds.
func (s *Schedule) Refill() {
	s.remaining = s.depth
	ext := s.depth - 1
	l, r, d, u := 0, 0, 0, 0
	if s.adj.Left {
		l = ext
	}
	if s.adj.Right {
		r = ext
	}
	if s.adj.Down {
		d = ext
	}
	if s.adj.Up {
		u = ext
	}
	s.cur = s.interior.ExpandSides(l, r, d, u, s.g)
}

// Next returns the bounds for the next matrix application and true, or a
// zero Bounds and false if the halo is exhausted and Refill (after an
// exchange) is required first. On success the schedule advances: the
// following application gets bounds shrunk by one toward the interior.
func (s *Schedule) Next() (grid.Bounds, bool) {
	if s.remaining == 0 {
		return grid.Bounds{}, false
	}
	b := s.cur
	s.remaining--
	s.cur = s.cur.ShrinkToward(1, s.interior)
	return b, true
}

// Remaining returns how many applications are left before a Refill is needed.
func (s *Schedule) Remaining() int { return s.remaining }

// StepsPerExchange returns the number of matrix applications one exchange
// buys, which is the depth.
func (s *Schedule) StepsPerExchange() int { return s.depth }

// RedundantCells returns the total number of cell updates a full cycle of
// depth applications performs beyond depth× the interior — the "small
// amount of redundant computation" the matrix-powers kernel trades for
// fewer messages. Used by the ablation benchmarks and the performance
// model.
func (s *Schedule) RedundantCells() int {
	total := 0
	ext := s.depth - 1
	l, r, d, u := 0, 0, 0, 0
	if s.adj.Left {
		l = ext
	}
	if s.adj.Right {
		r = ext
	}
	if s.adj.Down {
		d = ext
	}
	if s.adj.Up {
		u = ext
	}
	b := s.interior.ExpandSides(l, r, d, u, s.g)
	for i := 0; i < s.depth; i++ {
		total += b.Cells()
		b = b.ShrinkToward(1, s.interior)
	}
	return total - s.depth*s.interior.Cells()
}
