package halo

import (
	"testing"

	"tealeaf/internal/grid"
)

func TestSchedule3DShrinksPerStep(t *testing.T) {
	g := grid.UnitGrid3D(8, 8, 8, 3)
	adj := Sides3D{Left: true, Right: true, Down: true, Up: true, Back: true, Front: true}
	s, err := NewSchedule3D(g, 3, adj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("schedule must be empty before the first Refill")
	}
	s.Refill()
	want := []grid.Bounds3D{
		{X0: -2, X1: 10, Y0: -2, Y1: 10, Z0: -2, Z1: 10},
		{X0: -1, X1: 9, Y0: -1, Y1: 9, Z0: -1, Z1: 9},
		{X0: 0, X1: 8, Y0: 0, Y1: 8, Z0: 0, Z1: 8},
	}
	for i, w := range want {
		b, ok := s.Next()
		if !ok || b != w {
			t.Fatalf("step %d: bounds %v ok=%v, want %v", i, b, ok, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("schedule must be exhausted after depth steps")
	}
	if s.StepsPerExchange() != 3 {
		t.Errorf("steps per exchange = %d", s.StepsPerExchange())
	}
}

func TestSchedule3DPhysicalSidesDoNotExtend(t *testing.T) {
	g := grid.UnitGrid3D(8, 8, 8, 2)
	// Only the Front face has a neighbour.
	s, err := NewSchedule3D(g, 2, Sides3D{Front: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Refill()
	b, ok := s.Next()
	if !ok || b != (grid.Bounds3D{X0: 0, X1: 8, Y0: 0, Y1: 8, Z0: 0, Z1: 9}) {
		t.Fatalf("bounds %v", b)
	}
	b, _ = s.Next()
	if b != g.Interior() {
		t.Fatalf("second step must be the interior, got %v", b)
	}
}

func TestSchedule3DRedundantCells(t *testing.T) {
	g := grid.UnitGrid3D(8, 8, 8, 2)
	s, err := NewSchedule3D(g, 2, Sides3D{Left: true, Right: true, Down: true, Up: true, Back: true, Front: true})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 2: one application on 10³, one on 8³ → redundant = 10³ − 8³.
	if got, want := s.RedundantCells(), 1000-512; got != want {
		t.Errorf("redundant cells = %d, want %d", got, want)
	}
	if s2, _ := NewSchedule3D(g, 1, NoNeighbors3D); s2.RedundantCells() != 0 {
		t.Error("depth 1 has no redundant work")
	}
}

func TestSchedule3DValidation(t *testing.T) {
	g := grid.UnitGrid3D(4, 4, 4, 2)
	if _, err := NewSchedule3D(g, 3, NoNeighbors3D); err == nil {
		t.Error("depth beyond halo must error")
	}
	if _, err := NewSchedule3D(g, 0, NoNeighbors3D); err == nil {
		t.Error("depth 0 must error")
	}
}
