package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

func testField(g *grid.Grid2D, seed int64) *grid.Field2D {
	f := grid.NewField2D(g)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		f.Data[i] = rng.Float64()*2 - 1
	}
	return f
}

var pools = map[string]*par.Pool{
	"serial":   par.Serial,
	"parallel": par.NewPool(4).WithGrain(1),
}

func TestDot(t *testing.T) {
	g := grid.UnitGrid2D(17, 11, 2)
	x := testField(g, 1)
	y := testField(g, 2)
	b := g.Interior()
	var want float64
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			want += x.At(j, k) * y.At(j, k)
		}
	}
	for name, p := range pools {
		if got := Dot(p, b, x, y); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Dot = %v, want %v", name, got, want)
		}
	}
	if Dot(par.Serial, grid.Bounds{X0: 3, X1: 3, Y0: 0, Y1: 5}, x, y) != 0 {
		t.Error("empty bounds dot must be 0")
	}
}

func TestDotExcludesHalo(t *testing.T) {
	g := grid.UnitGrid2D(4, 4, 2)
	x := grid.NewField2D(g)
	x.Fill(1) // halos are 1 as well
	got := Dot(par.Serial, g.Interior(), x, x)
	if got != 16 {
		t.Errorf("Dot over interior = %v, want 16 (halo leaked in)", got)
	}
}

func TestAxpy(t *testing.T) {
	g := grid.UnitGrid2D(9, 9, 1)
	b := g.Interior()
	for name, p := range pools {
		x := testField(g, 3)
		y := testField(g, 4)
		want := y.Clone()
		for k := 0; k < g.NY; k++ {
			for j := 0; j < g.NX; j++ {
				want.Set(j, k, want.At(j, k)+2.5*x.At(j, k))
			}
		}
		Axpy(p, b, 2.5, x, y)
		if !y.ApproxEqual(want, 1e-14) {
			t.Errorf("%s: Axpy mismatch, maxdiff=%v", name, y.MaxDiff(want))
		}
	}
}

func TestXpay(t *testing.T) {
	g := grid.UnitGrid2D(8, 6, 1)
	b := g.Interior()
	x := testField(g, 5)
	y := testField(g, 6)
	want := grid.NewField2D(g)
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			want.Set(j, k, x.At(j, k)+0.75*y.At(j, k))
		}
	}
	Xpay(par.Serial, b, x, 0.75, y)
	if !y.ApproxEqual(want, 1e-14) {
		t.Errorf("Xpay mismatch: %v", y.MaxDiff(want))
	}
}

func TestAxpby(t *testing.T) {
	g := grid.UnitGrid2D(8, 6, 1)
	b := g.Interior()
	x := testField(g, 7)
	y := testField(g, 8)
	z := grid.NewField2D(g)
	Axpby(par.NewPool(3).WithGrain(1), b, 2, x, -3, y, z)
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			want := 2*x.At(j, k) - 3*y.At(j, k)
			if math.Abs(z.At(j, k)-want) > 1e-14 {
				t.Fatalf("Axpby(%d,%d) = %v, want %v", j, k, z.At(j, k), want)
			}
		}
	}
}

func TestCopyScaleFill(t *testing.T) {
	g := grid.UnitGrid2D(10, 10, 1)
	b := grid.Bounds{X0: 2, X1: 8, Y0: 3, Y1: 7}
	src := testField(g, 9)
	dst := grid.NewField2D(g)
	Copy(par.Serial, b, dst, src)
	for k := 0; k < g.NY; k++ {
		for j := 0; j < g.NX; j++ {
			want := 0.0
			if b.Contains(j, k) {
				want = src.At(j, k)
			}
			if dst.At(j, k) != want {
				t.Fatalf("Copy(%d,%d) = %v, want %v", j, k, dst.At(j, k), want)
			}
		}
	}
	Scale(par.Serial, b, 2, dst)
	if math.Abs(dst.At(3, 4)-2*src.At(3, 4)) > 1e-15 {
		t.Error("Scale wrong")
	}
	Fill(par.Serial, b, 7, dst)
	if dst.At(3, 4) != 7 || dst.At(0, 0) != 0 {
		t.Error("Fill must only touch bounds")
	}
	ScaleTo(par.Serial, b, 3, src, dst)
	if math.Abs(dst.At(2, 3)-3*src.At(2, 3)) > 1e-15 {
		t.Error("ScaleTo wrong")
	}
}

func TestSubMul(t *testing.T) {
	g := grid.UnitGrid2D(6, 6, 1)
	b := g.Interior()
	x := testField(g, 10)
	y := testField(g, 11)
	z := grid.NewField2D(g)
	Sub(par.Serial, b, x, y, z)
	if math.Abs(z.At(2, 2)-(x.At(2, 2)-y.At(2, 2))) > 1e-15 {
		t.Error("Sub wrong")
	}
	Mul(par.Serial, b, x, y, z)
	if math.Abs(z.At(4, 1)-x.At(4, 1)*y.At(4, 1)) > 1e-15 {
		t.Error("Mul wrong")
	}
}

func TestAxpyDotFusionMatchesUnfused(t *testing.T) {
	g := grid.UnitGrid2D(20, 14, 2)
	b := g.Interior()
	for name, p := range pools {
		x := testField(g, 12)
		y1 := testField(g, 13)
		y2 := y1.Clone()
		// Unfused reference.
		Axpy(par.Serial, b, -0.3, x, y1)
		want := Norm2Sq(par.Serial, b, y1)
		got := AxpyDot(p, b, -0.3, x, y2)
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Errorf("%s: AxpyDot = %v, want %v", name, got, want)
		}
		if !y1.ApproxEqual(y2, 1e-14) {
			t.Errorf("%s: fused update differs from unfused", name)
		}
	}
}

func TestDot2MatchesTwoDots(t *testing.T) {
	g := grid.UnitGrid2D(15, 9, 1)
	b := g.Interior()
	x, y, z := testField(g, 14), testField(g, 15), testField(g, 16)
	for name, p := range pools {
		xy, yz := Dot2(p, b, x, y, z)
		if math.Abs(xy-Dot(par.Serial, b, x, y)) > 1e-12 {
			t.Errorf("%s: Dot2 xy mismatch", name)
		}
		if math.Abs(yz-Dot(par.Serial, b, y, z)) > 1e-12 {
			t.Errorf("%s: Dot2 yz mismatch", name)
		}
	}
}

func TestKernelsOnExpandedBounds(t *testing.T) {
	// The matrix-powers kernel runs vector ops on bounds extended into the
	// halo; kernels must handle negative coordinates.
	g := grid.UnitGrid2D(8, 8, 3)
	b := g.Interior().Expand(2, g)
	x := testField(g, 17)
	y := testField(g, 18)
	var want float64
	for k := -2; k < 10; k++ {
		for j := -2; j < 10; j++ {
			want += x.At(j, k) * y.At(j, k)
		}
	}
	if got := Dot(par.Serial, b, x, y); math.Abs(got-want) > 1e-12 {
		t.Errorf("Dot on expanded bounds = %v, want %v", got, want)
	}
	Axpy(par.Serial, b, 1.5, x, y)
	if math.Abs(y.At(-2, -2)-(testField(g, 18).At(-2, -2)+1.5*x.At(-2, -2))) > 1e-14 {
		t.Error("Axpy must update halo cells inside expanded bounds")
	}
}

func TestNorm2(t *testing.T) {
	g := grid.UnitGrid2D(3, 1, 1)
	x := grid.NewField2D(g)
	x.Set(0, 0, 2)
	x.Set(1, 0, 3)
	x.Set(2, 0, 6)
	if got := Norm2(par.Serial, g.Interior(), x); math.Abs(got-7) > 1e-14 {
		t.Errorf("Norm2 = %v, want 7", got)
	}
}

func TestDotLinearityQuick(t *testing.T) {
	g := grid.UnitGrid2D(12, 8, 1)
	b := g.Interior()
	x := testField(g, 19)
	y := testField(g, 20)
	z := testField(g, 21)
	f := func(au, bu int8) bool {
		alpha, beta := float64(au)/16, float64(bu)/16
		// <αx + βy, z> == α<x,z> + β<y,z>
		tmp := grid.NewField2D(g)
		Axpby(par.Serial, b, alpha, x, beta, y, tmp)
		lhs := Dot(par.Serial, b, tmp, z)
		rhs := alpha*Dot(par.Serial, b, x, z) + beta*Dot(par.Serial, b, y, z)
		return math.Abs(lhs-rhs) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
