package kernels

import (
	"math"
	"testing"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// The pipelined CG step kernel follows the same fusion contract as the
// fused pair (fused_test.go): it must match the composition of its
// unfused equivalents to 1e-13 across pool sizes and odd-shaped bounds.

func TestPipelinedCGStepMatchesComposed(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	minv := testField(g, 91)
	r0 := testField(g, 92)
	w0 := testField(g, 93)
	nv := testField(g, 94)
	const beta, alpha = 0.43, 0.27
	for _, b := range fusionBounds(g) {
		for name, pool := range fusionPools() {
			for _, m := range []*grid.Field2D{nil, minv} {
				// Reference, composed: u = m⊙r; p = u + β·p; s = w + β·s;
				// z = n + β·z; x += α·p; r −= α·s; w −= α·z; then
				// u' = m⊙r; γ = r·u'; δ = u'·w; rr = r·r.
				u := r0
				if m != nil {
					u = grid.NewField2D(g)
					Mul(par.Serial, b, m, r0, u)
				}
				pRef, sRef, zRef := testField(g, 95), testField(g, 96), testField(g, 97)
				Xpay(par.Serial, b, u, beta, pRef)
				Xpay(par.Serial, b, w0, beta, sRef)
				Xpay(par.Serial, b, nv, beta, zRef)
				xRef := testField(g, 98)
				rRef, wRef := r0.Clone(), w0.Clone()
				Axpy(par.Serial, b, alpha, pRef, xRef)
				Axpy(par.Serial, b, -alpha, sRef, rRef)
				Axpy(par.Serial, b, -alpha, zRef, wRef)
				u2 := rRef
				if m != nil {
					u2 = grid.NewField2D(g)
					Mul(par.Serial, b, m, rRef, u2)
				}
				gammaRef := Dot(par.Serial, b, rRef, u2)
				deltaRef := Dot(par.Serial, b, u2, wRef)
				rrRef := Dot(par.Serial, b, rRef, rRef)

				p, s, z := testField(g, 95), testField(g, 96), testField(g, 97)
				x := testField(g, 98)
				r, w := r0.Clone(), w0.Clone()
				gamma, delta, rr := PipelinedCGStep(pool, b, m, r, w, nv, beta, alpha, p, s, z, x)
				if !close13(gamma, gammaRef) || !close13(delta, deltaRef) || !close13(rr, rrRef) {
					t.Errorf("%s %v minv=%v: (γ,δ,rr) = (%v,%v,%v), want (%v,%v,%v)",
						name, b, m != nil, gamma, delta, rr, gammaRef, deltaRef, rrRef)
				}
				if m == nil && gamma != rr {
					t.Errorf("%s %v: identity γ %v != rr %v", name, b, gamma, rr)
				}
				fieldsClose13(t, name+" p", p, pRef)
				fieldsClose13(t, name+" s", s, sRef)
				fieldsClose13(t, name+" z", z, zRef)
				fieldsClose13(t, name+" x", x, xRef)
				fieldsClose13(t, name+" r", r, rRef)
				fieldsClose13(t, name+" w", w, wRef)
			}
		}
	}
}

func TestPipelinedCGStep3DMatchesComposed(t *testing.T) {
	g3 := grid.UnitGrid3D(11, 7, 5, 1)
	in := g3.Interior()
	mk := func(seed int64) *grid.Field3D {
		f := grid.NewField3D(g3)
		rng := newRng(seed)
		for i := range f.Data {
			f.Data[i] = rng.Float64()*2 - 1
		}
		return f
	}
	r0, w0, nv := mk(110), mk(111), mk(112)
	minv := mk(113)
	for i := range minv.Data {
		minv.Data[i] = 0.5 + math.Abs(minv.Data[i])
	}
	const alpha, beta = 0.33, 0.61
	for name, pool := range fusionPools() {
		for _, m := range []*grid.Field3D{nil, minv} {
			u := r0
			if m != nil {
				u = grid.NewField3D(g3)
				for i := range u.Data {
					u.Data[i] = m.Data[i] * r0.Data[i]
				}
			}
			pRef, sRef, zRef := mk(114), mk(115), mk(116)
			Xpay3D(par.Serial, in, u, beta, pRef)
			Xpay3D(par.Serial, in, w0, beta, sRef)
			Xpay3D(par.Serial, in, nv, beta, zRef)
			xRef := mk(117)
			rRef, wRef := r0.Clone(), w0.Clone()
			Axpy3D(par.Serial, in, alpha, pRef, xRef)
			Axpy3D(par.Serial, in, -alpha, sRef, rRef)
			Axpy3D(par.Serial, in, -alpha, zRef, wRef)
			var gammaRef, deltaRef, rrRef float64
			for k := 0; k < g3.NZ; k++ {
				for j := 0; j < g3.NY; j++ {
					for i := 0; i < g3.NX; i++ {
						rv := rRef.At(i, j, k)
						uv := rv
						if m != nil {
							uv = m.At(i, j, k) * rv
						}
						gammaRef += uv * rv
						deltaRef += uv * wRef.At(i, j, k)
						rrRef += rv * rv
					}
				}
			}
			p, s, z := mk(114), mk(115), mk(116)
			x := mk(117)
			r, w := r0.Clone(), w0.Clone()
			gamma, delta, rr := PipelinedCGStep3D(pool, in, m, r, w, nv, beta, alpha, p, s, z, x)
			if !close13(gamma, gammaRef) || !close13(delta, deltaRef) || !close13(rr, rrRef) {
				t.Errorf("%s minv=%v: (γ,δ,rr) = (%v,%v,%v), want (%v,%v,%v)",
					name, m != nil, gamma, delta, rr, gammaRef, deltaRef, rrRef)
			}
			fields3Close13(t, name+" p", p, pRef)
			fields3Close13(t, name+" s", s, sRef)
			fields3Close13(t, name+" z", z, zRef)
			fields3Close13(t, name+" x", x, xRef)
			fields3Close13(t, name+" r", r, rRef)
			fields3Close13(t, name+" w", w, wRef)
		}
	}
}
