package kernels

import (
	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// The 3D variants operate on the full interior of a Field3D (the 3D path
// supports single-rank solves only, matching the paper's "the 3D results
// are similar" evaluation) and parallelise over z-planes. Inner loops use
// the same re-slicing and unrolling scheme as the 2D kernels.

// row3 re-slices the interior x-extent of row (j,k) of d.
func row3(g *grid.Grid3D, d []float64, j, k int) []float64 {
	o := g.Index(0, j, k)
	return d[o : o+g.NX : o+g.NX]
}

// Dot3D returns Σ x·y over the interior.
func Dot3D(p *par.Pool, x, y *grid.Field3D) float64 {
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := g.NX
	return p.ForReduce(0, g.NZ, func(z0, z1 int) float64 {
		var s0, s1, s2, s3 float64
		for k := z0; k < z1; k++ {
			for j := 0; j < g.NY; j++ {
				xs := row3(g, xd, j, k)
				ys := row3(g, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					s0 += xs[i] * ys[i]
					s1 += xs[i+1] * ys[i+1]
					s2 += xs[i+2] * ys[i+2]
					s3 += xs[i+3] * ys[i+3]
				}
				for ; i < n; i++ {
					s0 += xs[i] * ys[i]
				}
			}
		}
		return (s0 + s1) + (s2 + s3)
	})
}

// Axpy3D computes y += alpha*x over the interior.
func Axpy3D(p *par.Pool, alpha float64, x, y *grid.Field3D) {
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := g.NX
	p.For(0, g.NZ, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := 0; j < g.NY; j++ {
				xs := row3(g, xd, j, k)
				ys := row3(g, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					ys[i] += alpha * xs[i]
					ys[i+1] += alpha * xs[i+1]
					ys[i+2] += alpha * xs[i+2]
					ys[i+3] += alpha * xs[i+3]
				}
				for ; i < n; i++ {
					ys[i] += alpha * xs[i]
				}
			}
		}
	})
}

// Xpay3D computes y = x + beta*y over the interior.
func Xpay3D(p *par.Pool, x *grid.Field3D, beta float64, y *grid.Field3D) {
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := g.NX
	p.For(0, g.NZ, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := 0; j < g.NY; j++ {
				xs := row3(g, xd, j, k)
				ys := row3(g, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					ys[i] = xs[i] + beta*ys[i]
					ys[i+1] = xs[i+1] + beta*ys[i+1]
					ys[i+2] = xs[i+2] + beta*ys[i+2]
					ys[i+3] = xs[i+3] + beta*ys[i+3]
				}
				for ; i < n; i++ {
					ys[i] = xs[i] + beta*ys[i]
				}
			}
		}
	})
}

// FusedCGDirections3D is the 3D (unpreconditioned) variant of
// FusedCGDirections: p = r + β·p and s = w + β·s in one sweep.
func FusedCGDirections3D(pl *par.Pool, r, w *grid.Field3D, beta float64, p, s *grid.Field3D) {
	g := r.Grid
	rd, wd, pd, sd := r.Data, w.Data, p.Data, s.Data
	n := g.NX
	pl.For(0, g.NZ, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := 0; j < g.NY; j++ {
				rs := row3(g, rd, j, k)
				ws := row3(g, wd, j, k)
				ps := row3(g, pd, j, k)
				ss := row3(g, sd, j, k)
				i := 0
				for ; i+1 < n; i += 2 {
					ps[i] = rs[i] + beta*ps[i]
					ss[i] = ws[i] + beta*ss[i]
					ps[i+1] = rs[i+1] + beta*ps[i+1]
					ss[i+1] = ws[i+1] + beta*ss[i+1]
				}
				for ; i < n; i++ {
					ps[i] = rs[i] + beta*ps[i]
					ss[i] = ws[i] + beta*ss[i]
				}
			}
		}
	})
}

// FusedCGUpdate3D is the 3D (unpreconditioned) variant of FusedCGUpdate:
// x += α·p, r −= α·s and rr = Σ r·r in one sweep.
func FusedCGUpdate3D(pl *par.Pool, alpha float64, p, s, x, r *grid.Field3D) float64 {
	g := r.Grid
	pd, sd, xd, rd := p.Data, s.Data, x.Data, r.Data
	n := g.NX
	return pl.ForReduce(0, g.NZ, func(z0, z1 int) float64 {
		var rr0, rr1 float64
		for k := z0; k < z1; k++ {
			for j := 0; j < g.NY; j++ {
				ps := row3(g, pd, j, k)
				ss := row3(g, sd, j, k)
				xs := row3(g, xd, j, k)
				rs := row3(g, rd, j, k)
				i := 0
				for ; i+1 < n; i += 2 {
					xs[i] += alpha * ps[i]
					v0 := rs[i] - alpha*ss[i]
					rs[i] = v0
					rr0 += v0 * v0
					xs[i+1] += alpha * ps[i+1]
					v1 := rs[i+1] - alpha*ss[i+1]
					rs[i+1] = v1
					rr1 += v1 * v1
				}
				for ; i < n; i++ {
					xs[i] += alpha * ps[i]
					v := rs[i] - alpha*ss[i]
					rs[i] = v
					rr0 += v * v
				}
			}
		}
		return rr0 + rr1
	})
}
