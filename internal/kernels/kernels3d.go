package kernels

import (
	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// The 3D variants operate on a Bounds3D box of a Field3D — the interior
// for plain solver sweeps, matrix-powers extended bounds for the deep-halo
// inner loops — and parallelise over z-planes. Inner loops use the same
// re-slicing and unrolling scheme as the 2D kernels.

// row3 re-slices columns [b.X0, b.X1) of row (j,k) of d.
func row3(g *grid.Grid3D, b grid.Bounds3D, d []float64, j, k int) []float64 {
	o := g.Index(b.X0, j, k)
	n := b.X1 - b.X0
	return d[o : o+n : o+n]
}

// tileBounds3 converts a scheduler tile back to 3D grid bounds.
func tileBounds3(t par.Tile) grid.Bounds3D {
	return grid.Bounds3D{X0: t.X0, X1: t.X1, Y0: t.Y0, Y1: t.Y1, Z0: t.Z0, Z1: t.Z1}
}

// box3 is the scheduler iteration box for 3D grid bounds.
func box3(b grid.Bounds3D) par.Box { return par.Box3D(b.X0, b.X1, b.Y0, b.Y1, b.Z0, b.Z1) }

// Dot3D returns Σ x·y over b.
func Dot3D(p *par.Pool, b grid.Bounds3D, x, y *grid.Field3D) float64 {
	if b.Empty() {
		return 0
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	return p.ForTilesReduceN(1, box3(b), func(t par.Tile, acc []float64) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		var s0, s1, s2, s3 float64
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				xs := row3(g, tb, xd, j, k)
				ys := row3(g, tb, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					s0 += xs[i] * ys[i]
					s1 += xs[i+1] * ys[i+1]
					s2 += xs[i+2] * ys[i+2]
					s3 += xs[i+3] * ys[i+3]
				}
				for ; i < n; i++ {
					s0 += xs[i] * ys[i]
				}
			}
		}
		acc[0] += (s0 + s1) + (s2 + s3)
	})[0]
}

// Dot23D computes the pair (x·y, y·z) over b in one sweep and one
// traversal of y — the 3D variant of Dot2, used for the fused (r·z, r·r)
// pair of each PCG iteration.
func Dot23D(p *par.Pool, b grid.Bounds3D, x, y, z *grid.Field3D) (xy, yz float64) {
	if b.Empty() {
		return 0, 0
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	acc := p.ForTilesReduceN(2, box3(b), func(t par.Tile, acc []float64) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		var a0, a1, c0, c1 float64
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				xs := row3(g, tb, xd, j, k)
				ys := row3(g, tb, yd, j, k)
				zs := row3(g, tb, zd, j, k)
				i := 0
				for ; i+1 < n; i += 2 {
					a0 += xs[i] * ys[i]
					c0 += ys[i] * zs[i]
					a1 += xs[i+1] * ys[i+1]
					c1 += ys[i+1] * zs[i+1]
				}
				for ; i < n; i++ {
					a0 += xs[i] * ys[i]
					c0 += ys[i] * zs[i]
				}
			}
		}
		acc[0] += a0 + a1
		acc[1] += c0 + c1
	})
	return acc[0], acc[1]
}

// Axpy3D computes y += alpha*x over b.
func Axpy3D(p *par.Pool, b grid.Bounds3D, alpha float64, x, y *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := b.X1 - b.X0
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				xs := row3(g, b, xd, j, k)
				ys := row3(g, b, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					ys[i] += alpha * xs[i]
					ys[i+1] += alpha * xs[i+1]
					ys[i+2] += alpha * xs[i+2]
					ys[i+3] += alpha * xs[i+3]
				}
				for ; i < n; i++ {
					ys[i] += alpha * xs[i]
				}
			}
		}
	})
}

// Xpay3D computes y = x + beta*y over b.
func Xpay3D(p *par.Pool, b grid.Bounds3D, x *grid.Field3D, beta float64, y *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := b.X1 - b.X0
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				xs := row3(g, b, xd, j, k)
				ys := row3(g, b, yd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					ys[i] = xs[i] + beta*ys[i]
					ys[i+1] = xs[i+1] + beta*ys[i+1]
					ys[i+2] = xs[i+2] + beta*ys[i+2]
					ys[i+3] = xs[i+3] + beta*ys[i+3]
				}
				for ; i < n; i++ {
					ys[i] = xs[i] + beta*ys[i]
				}
			}
		}
	})
}

// Copy3D copies src into dst over b.
func Copy3D(p *par.Pool, b grid.Bounds3D, dst, src *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				copy(row3(g, b, dd, j, k), row3(g, b, sd, j, k))
			}
		}
	})
}

// ScaleTo3D computes dst = alpha*src over b.
func ScaleTo3D(p *par.Pool, b grid.Bounds3D, alpha float64, src, dst *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	n := b.X1 - b.X0
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				ss := row3(g, b, sd, j, k)
				ds := row3(g, b, dd, j, k)
				for i := 0; i < n; i++ {
					ds[i] = alpha * ss[i]
				}
			}
		}
	})
}

// AxpyAxpy3D fuses two independent AXPYs into one sweep over b:
// y1 += a1*x1 and y2 += a2*x2 — the fused u/r update of the 3D Chebyshev
// and PPCG outer loops.
func AxpyAxpy3D(p *par.Pool, b grid.Bounds3D, a1 float64, x1, y1 *grid.Field3D, a2 float64, x2, y2 *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := x1.Grid
	x1d, y1d, x2d, y2d := x1.Data, y1.Data, x2.Data, y2.Data
	n := b.X1 - b.X0
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				x1s := row3(g, b, x1d, j, k)
				y1s := row3(g, b, y1d, j, k)
				x2s := row3(g, b, x2d, j, k)
				y2s := row3(g, b, y2d, j, k)
				i := 0
				for ; i+1 < n; i += 2 {
					y1s[i] += a1 * x1s[i]
					y2s[i] += a2 * x2s[i]
					y1s[i+1] += a1 * x1s[i+1]
					y2s[i+1] += a2 * x2s[i+1]
				}
				for ; i < n; i++ {
					y1s[i] += a1 * x1s[i]
					y2s[i] += a2 * x2s[i]
				}
			}
		}
	})
}

// AxpbyPre3D fuses the diagonal preconditioner into the Chebyshev
// direction update over b: y = a*y + beta*(minv ⊙ r), nil minv selecting
// the identity — the 3D variant of AxpbyPre.
func AxpbyPre3D(p *par.Pool, b grid.Bounds3D, a float64, y *grid.Field3D, beta float64, minv, r *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := y.Grid
	yd, rd := y.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	n := b.X1 - b.X0
	p.For(b.Z0, b.Z1, func(z0, z1 int) {
		for k := z0; k < z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				ys := row3(g, b, yd, j, k)
				rs := row3(g, b, rd, j, k)
				if md == nil {
					for i := 0; i < n; i++ {
						ys[i] = a*ys[i] + beta*rs[i]
					}
					continue
				}
				ms := row3(g, b, md, j, k)
				for i := 0; i < n; i++ {
					ys[i] = a*ys[i] + beta*(ms[i]*rs[i])
				}
			}
		}
	})
}

// PrecondDot3D fuses z = minv ⊙ r with r·z over b (nil minv: identity,
// z filled from r unless aliased, returning r·r).
func PrecondDot3D(p *par.Pool, b grid.Bounds3D, minv, r, z *grid.Field3D) float64 {
	if b.Empty() {
		return 0
	}
	if minv == nil {
		if z != r {
			Copy3D(p, b, z, r)
		}
		return Dot3D(p, b, r, r)
	}
	g := r.Grid
	md, rd, zd := minv.Data, r.Data, z.Data
	return p.ForTilesReduceN(1, box3(b), func(t par.Tile, acc []float64) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		var s0, s1 float64
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				ms := row3(g, tb, md, j, k)
				rs := row3(g, tb, rd, j, k)
				zs := row3(g, tb, zd, j, k)
				i := 0
				for ; i+1 < n; i += 2 {
					v0 := ms[i] * rs[i]
					zs[i] = v0
					s0 += rs[i] * v0
					v1 := ms[i+1] * rs[i+1]
					zs[i+1] = v1
					s1 += rs[i+1] * v1
				}
				for ; i < n; i++ {
					v := ms[i] * rs[i]
					zs[i] = v
					s0 += rs[i] * v
				}
			}
		}
		acc[0] += s0 + s1
	})[0]
}

// FusedCGDirections3D is pass one of the 3D single-reduction CG
// iteration: p = (minv ⊙ r) + β·p and s = w + β·s in one sweep over b,
// with nil minv selecting the identity — mirrors FusedCGDirections.
func FusedCGDirections3D(pl *par.Pool, b grid.Bounds3D, minv, r, w *grid.Field3D, beta float64, p, s *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := r.Grid
	rd, wd, pd, sd := r.Data, w.Data, p.Data, s.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTiles(box3(b), func(t par.Tile) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				rs := row3(g, tb, rd, j, k)
				ps := row3(g, tb, pd, j, k)
				if md == nil {
					i := 0
					for ; i+3 < n; i += 4 {
						ps[i] = rs[i] + beta*ps[i]
						ps[i+1] = rs[i+1] + beta*ps[i+1]
						ps[i+2] = rs[i+2] + beta*ps[i+2]
						ps[i+3] = rs[i+3] + beta*ps[i+3]
					}
					for ; i < n; i++ {
						ps[i] = rs[i] + beta*ps[i]
					}
				} else {
					ms := row3(g, tb, md, j, k)
					i := 0
					for ; i+3 < n; i += 4 {
						ps[i] = ms[i]*rs[i] + beta*ps[i]
						ps[i+1] = ms[i+1]*rs[i+1] + beta*ps[i+1]
						ps[i+2] = ms[i+2]*rs[i+2] + beta*ps[i+2]
						ps[i+3] = ms[i+3]*rs[i+3] + beta*ps[i+3]
					}
					for ; i < n; i++ {
						ps[i] = ms[i]*rs[i] + beta*ps[i]
					}
				}
				ws := row3(g, tb, wd, j, k)
				ss := row3(g, tb, sd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					ss[i] = ws[i] + beta*ss[i]
					ss[i+1] = ws[i+1] + beta*ss[i+1]
					ss[i+2] = ws[i+2] + beta*ss[i+2]
					ss[i+3] = ws[i+3] + beta*ss[i+3]
				}
				for ; i < n; i++ {
					ss[i] = ws[i] + beta*ss[i]
				}
			}
		}
	})
}

// FusedCGUpdate3D is pass two of the 3D single-reduction CG iteration:
// x += α·p, r −= α·s, γ = Σ r·(minv ⊙ r), rr = Σ r·r in one sweep over b.
// nil minv selects the identity, for which γ == rr.
func FusedCGUpdate3D(pl *par.Pool, b grid.Bounds3D, alpha float64, p, s, x, r, minv *grid.Field3D) (gamma, rr float64) {
	if b.Empty() {
		return 0, 0
	}
	g := r.Grid
	pd, sd, xd, rd := p.Data, s.Data, x.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	acc := pl.ForTilesReduceN(2, box3(b), fusedCGUpdateBody3D(g, alpha, pd, sd, xd, rd, md))
	return acc[0], acc[1]
}

// FusedCGUpdateChain3D is FusedCGUpdate3D restricted to one chain band's
// tile range [t0,t1): same tile body, partials landing in the per-tile
// accumulator for an end-of-sweep fold (see FusedCGUpdateChain).
func FusedCGUpdateChain3D(pl *par.Pool, acc *par.ChainAccum, t0, t1 int, alpha float64, p, s, x, r, minv *grid.Field3D) {
	g := r.Grid
	pd, sd, xd, rd := p.Data, s.Data, x.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTilesChunk(acc, t0, t1, fusedCGUpdateBody3D(g, alpha, pd, sd, xd, rd, md))
}

// fusedCGUpdateBody3D is the tile body shared by FusedCGUpdate3D and
// FusedCGUpdateChain3D — one closure, so the chained and unchained
// sweeps cannot drift bit-wise.
func fusedCGUpdateBody3D(g *grid.Grid3D, alpha float64, pd, sd, xd, rd, md []float64) func(t par.Tile, acc []float64) {
	return func(t par.Tile, acc []float64) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		var g0, g1, rr0, rr1 float64
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				ps := row3(g, tb, pd, j, k)
				xs := row3(g, tb, xd, j, k)
				i := 0
				for ; i+3 < n; i += 4 {
					xs[i] += alpha * ps[i]
					xs[i+1] += alpha * ps[i+1]
					xs[i+2] += alpha * ps[i+2]
					xs[i+3] += alpha * ps[i+3]
				}
				for ; i < n; i++ {
					xs[i] += alpha * ps[i]
				}
				ss := row3(g, tb, sd, j, k)
				rs := row3(g, tb, rd, j, k)
				if md == nil {
					i = 0
					for ; i+1 < n; i += 2 {
						v0 := rs[i] - alpha*ss[i]
						rs[i] = v0
						rr0 += v0 * v0
						v1 := rs[i+1] - alpha*ss[i+1]
						rs[i+1] = v1
						rr1 += v1 * v1
					}
					for ; i < n; i++ {
						v := rs[i] - alpha*ss[i]
						rs[i] = v
						rr0 += v * v
					}
					continue
				}
				ms := row3(g, tb, md, j, k)
				i = 0
				for ; i+1 < n; i += 2 {
					v0 := rs[i] - alpha*ss[i]
					rs[i] = v0
					g0 += ms[i] * v0 * v0
					rr0 += v0 * v0
					v1 := rs[i+1] - alpha*ss[i+1]
					rs[i+1] = v1
					g1 += ms[i+1] * v1 * v1
					rr1 += v1 * v1
				}
				for ; i < n; i++ {
					v := rs[i] - alpha*ss[i]
					rs[i] = v
					g0 += ms[i] * v * v
					rr0 += v * v
				}
			}
		}
		if md == nil {
			acc[0] += rr0 + rr1
			acc[1] += rr0 + rr1
		} else {
			acc[0] += g0 + g1
			acc[1] += rr0 + rr1
		}
	}
}

// FusedPPCGInner3D is the fused Chebyshev inner step of 3D PPCG:
//
//	rtemp −= w
//	sd     = α·sd + β·(minv ⊙ rtemp)     over b (matrix-powers bounds)
//	z     += sd                           over in (the interior) only
//
// b must contain in; cells outside in update rtemp/sd but not z, exactly
// as the matrix-powers schedule requires on extended bounds. nil minv
// selects the identity preconditioner.
func FusedPPCGInner3D(pl *par.Pool, b, in grid.Bounds3D, alpha, beta float64, w, rtemp, minv, sd, z *grid.Field3D) {
	if b.Empty() {
		return
	}
	g := rtemp.Grid
	wd, rd, sdd, zd := w.Data, rtemp.Data, sd.Data, z.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTiles(box3(b), func(t par.Tile) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		// Column range of the interior within this tile's row slices.
		xlo, xhi := max(in.X0, tb.X0), min(in.X1, tb.X1)
		zb := in
		zb.X0, zb.X1 = xlo, xhi
		for k := tb.Z0; k < tb.Z1; k++ {
			inZ := k >= in.Z0 && k < in.Z1
			for j := tb.Y0; j < tb.Y1; j++ {
				ws := row3(g, tb, wd, j, k)
				rs := row3(g, tb, rd, j, k)
				ss := row3(g, tb, sdd, j, k)
				if md == nil {
					for i := 0; i < n; i++ {
						v := rs[i] - ws[i]
						rs[i] = v
						ss[i] = alpha*ss[i] + beta*v
					}
				} else {
					ms := row3(g, tb, md, j, k)
					for i := 0; i < n; i++ {
						v := rs[i] - ws[i]
						rs[i] = v
						ss[i] = alpha*ss[i] + beta*(ms[i]*v)
					}
				}
				if inZ && j >= in.Y0 && j < in.Y1 && xhi > xlo {
					zs := row3(g, zb, zd, j, k)
					sz := ss[xlo-tb.X0 : xhi-tb.X0]
					i := 0
					for ; i+1 < len(sz); i += 2 {
						zs[i] += sz[i]
						zs[i+1] += sz[i+1]
					}
					for ; i < len(sz); i++ {
						zs[i] += sz[i]
					}
				}
			}
		}
	})
}

// PipelinedCGStep3D is the whole vector phase of a 3D pipelined CG
// iteration in one sweep: p = (minv ⊙ r) + β·p with x += α·p, then
// s = w + β·s with r −= α·s and rr, then z = n + β·z with w −= α·z and
// γ = Σ r·(minv ⊙ r), δ = Σ (minv ⊙ r)·w on the updated r and w. nil
// minv selects the identity, for which γ == rr. See PipelinedCGStep for
// why the direction and update passes are fused.
func PipelinedCGStep3D(pl *par.Pool, b grid.Bounds3D, minv, r, w, nv *grid.Field3D, beta, alpha float64, p, s, z, x *grid.Field3D) (gamma, delta, rr float64) {
	if b.Empty() {
		return 0, 0, 0
	}
	g := r.Grid
	rd, wd, nd, pd, sd, zd, xd := r.Data, w.Data, nv.Data, p.Data, s.Data, z.Data, x.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	acc := pl.ForTilesReduceN(3, box3(b), pipelinedCGStepBody3D(g, beta, alpha, md, rd, wd, nd, pd, sd, zd, xd))
	if md == nil {
		return acc[2], acc[1], acc[2]
	}
	return acc[0], acc[1], acc[2]
}

// PipelinedCGStepChain3D is PipelinedCGStep3D restricted to one chain
// band's tile range [t0,t1): same tile body, partials landing in the
// per-tile accumulator for an end-of-sweep fold (see
// PipelinedCGStepChain).
func PipelinedCGStepChain3D(pl *par.Pool, acc *par.ChainAccum, t0, t1 int, minv, r, w, nv *grid.Field3D, beta, alpha float64, p, s, z, x *grid.Field3D) {
	g := r.Grid
	rd, wd, nd, pd, sd, zd, xd := r.Data, w.Data, nv.Data, p.Data, s.Data, z.Data, x.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTilesChunk(acc, t0, t1, pipelinedCGStepBody3D(g, beta, alpha, md, rd, wd, nd, pd, sd, zd, xd))
}

// pipelinedCGStepBody3D is the tile body shared by PipelinedCGStep3D and
// PipelinedCGStepChain3D — one closure, so the chained and unchained
// sweeps cannot drift bit-wise.
func pipelinedCGStepBody3D(g *grid.Grid3D, beta, alpha float64, md, rd, wd, nd, pd, sd, zd, xd []float64) func(t par.Tile, acc []float64) {
	return func(t par.Tile, acc []float64) {
		tb := tileBounds3(t)
		n := tb.X1 - tb.X0
		var ga, de, rra float64
		for k := tb.Z0; k < tb.Z1; k++ {
			for j := tb.Y0; j < tb.Y1; j++ {
				rs := row3(g, tb, rd, j, k)
				ps := row3(g, tb, pd, j, k)
				xs := row3(g, tb, xd, j, k)
				if md == nil {
					i := 0
					for ; i+3 < n; i += 4 {
						p0 := rs[i] + beta*ps[i]
						ps[i] = p0
						xs[i] += alpha * p0
						p1 := rs[i+1] + beta*ps[i+1]
						ps[i+1] = p1
						xs[i+1] += alpha * p1
						p2 := rs[i+2] + beta*ps[i+2]
						ps[i+2] = p2
						xs[i+2] += alpha * p2
						p3 := rs[i+3] + beta*ps[i+3]
						ps[i+3] = p3
						xs[i+3] += alpha * p3
					}
					for ; i < n; i++ {
						p0 := rs[i] + beta*ps[i]
						ps[i] = p0
						xs[i] += alpha * p0
					}
				} else {
					ms := row3(g, tb, md, j, k)
					i := 0
					for ; i+3 < n; i += 4 {
						p0 := ms[i]*rs[i] + beta*ps[i]
						ps[i] = p0
						xs[i] += alpha * p0
						p1 := ms[i+1]*rs[i+1] + beta*ps[i+1]
						ps[i+1] = p1
						xs[i+1] += alpha * p1
						p2 := ms[i+2]*rs[i+2] + beta*ps[i+2]
						ps[i+2] = p2
						xs[i+2] += alpha * p2
						p3 := ms[i+3]*rs[i+3] + beta*ps[i+3]
						ps[i+3] = p3
						xs[i+3] += alpha * p3
					}
					for ; i < n; i++ {
						p0 := ms[i]*rs[i] + beta*ps[i]
						ps[i] = p0
						xs[i] += alpha * p0
					}
				}
				ws := row3(g, tb, wd, j, k)
				ss := row3(g, tb, sd, j, k)
				var rr0, rr1 float64
				i := 0
				for ; i+1 < n; i += 2 {
					s0 := ws[i] + beta*ss[i]
					ss[i] = s0
					v0 := rs[i] - alpha*s0
					rs[i] = v0
					rr0 += v0 * v0
					s1 := ws[i+1] + beta*ss[i+1]
					ss[i+1] = s1
					v1 := rs[i+1] - alpha*s1
					rs[i+1] = v1
					rr1 += v1 * v1
				}
				for ; i < n; i++ {
					s0 := ws[i] + beta*ss[i]
					ss[i] = s0
					v := rs[i] - alpha*s0
					rs[i] = v
					rr0 += v * v
				}
				rra += rr0 + rr1
				ns := row3(g, tb, nd, j, k)
				zs := row3(g, tb, zd, j, k)
				if md == nil {
					var d0, d1 float64
					i = 0
					for ; i+1 < n; i += 2 {
						z0v := ns[i] + beta*zs[i]
						zs[i] = z0v
						v0 := ws[i] - alpha*z0v
						ws[i] = v0
						d0 += rs[i] * v0
						z1v := ns[i+1] + beta*zs[i+1]
						zs[i+1] = z1v
						v1 := ws[i+1] - alpha*z1v
						ws[i+1] = v1
						d1 += rs[i+1] * v1
					}
					for ; i < n; i++ {
						zv := ns[i] + beta*zs[i]
						zs[i] = zv
						v := ws[i] - alpha*zv
						ws[i] = v
						d0 += rs[i] * v
					}
					de += d0 + d1
					continue
				}
				ms := row3(g, tb, md, j, k)
				var g0, g1, d0, d1 float64
				i = 0
				for ; i+1 < n; i += 2 {
					z0v := ns[i] + beta*zs[i]
					zs[i] = z0v
					v0 := ws[i] - alpha*z0v
					ws[i] = v0
					u0 := ms[i] * rs[i]
					g0 += u0 * rs[i]
					d0 += u0 * v0
					z1v := ns[i+1] + beta*zs[i+1]
					zs[i+1] = z1v
					v1 := ws[i+1] - alpha*z1v
					ws[i+1] = v1
					u1 := ms[i+1] * rs[i+1]
					g1 += u1 * rs[i+1]
					d1 += u1 * v1
				}
				for ; i < n; i++ {
					zv := ns[i] + beta*zs[i]
					zs[i] = zv
					v := ws[i] - alpha*zv
					ws[i] = v
					u := ms[i] * rs[i]
					g0 += u * rs[i]
					d0 += u * v
				}
				ga += g0 + g1
				de += d0 + d1
			}
		}
		acc[0] += ga
		acc[1] += de
		acc[2] += rra
	}
}
