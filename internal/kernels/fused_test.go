package kernels

import (
	"math"
	"math/rand"
	"testing"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// The fusion contract: every fused kernel matches the composition of its
// unfused equivalents to within 1e-13 (relative), across pool sizes
// {1, 2, 4, 7} and odd-shaped bounds rectangles. Fused kernels use
// different accumulator associations than the naive loops, so exact
// equality is not expected — but 1e-13 over O(10³)-cell rectangles of
// O(1) values leaves no room for indexing bugs.

// fusionPools is the satellite-test pool ladder.
func fusionPools() map[string]*par.Pool {
	return map[string]*par.Pool{
		"w1": par.NewPool(1),
		"w2": par.NewPool(2).WithGrain(1),
		"w4": par.NewPool(4).WithGrain(1),
		"w7": par.NewPool(7).WithGrain(1),
	}
}

// fusionBounds are deliberately odd rectangles (including offsets and
// single-row/column strips) over a 19×13 halo-2 grid.
func fusionBounds(g *grid.Grid2D) []grid.Bounds {
	return []grid.Bounds{
		g.Interior(),
		{X0: 1, X1: 18, Y0: 1, Y1: 12},
		{X0: 3, X1: 10, Y0: 5, Y1: 6},
		{X0: 7, X1: 8, Y0: 0, Y1: 13},
		{X0: 0, X1: 5, Y0: 9, Y1: 13},
		g.Interior().Expand(1, g),
	}
}

func close13(a, b float64) bool {
	return math.Abs(a-b) <= 1e-13*math.Max(1, math.Abs(b))
}

func fieldsClose13(t *testing.T, name string, got, want *grid.Field2D) {
	t.Helper()
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-13*math.Max(1, math.Abs(want.Data[i])) {
			j, k := got.Grid.Coords(i)
			t.Fatalf("%s: field differs at (%d,%d): %v vs %v", name, j, k, got.Data[i], want.Data[i])
		}
	}
}

func TestPrecondDotMatchesMulDot(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	minv := testField(g, 31)
	r := testField(g, 32)
	for _, b := range fusionBounds(g) {
		zRef := grid.NewField2D(g)
		Mul(par.Serial, b, minv, r, zRef)
		want := Dot(par.Serial, b, r, zRef)
		for name, p := range fusionPools() {
			z := grid.NewField2D(g)
			got := PrecondDot(p, b, minv, r, z)
			if !close13(got, want) {
				t.Errorf("%s %v: PrecondDot = %v, want %v", name, b, got, want)
			}
			fieldsClose13(t, name, z, zRef)
		}
		// nil minv: identity.
		z := grid.NewField2D(g)
		got := PrecondDot(par.Serial, b, nil, r, z)
		if !close13(got, Dot(par.Serial, b, r, r)) {
			t.Errorf("identity PrecondDot = %v, want r·r", got)
		}
	}
}

func TestAxpyAxpyMatchesTwoAxpys(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	x1 := testField(g, 41)
	x2 := testField(g, 42)
	for _, b := range fusionBounds(g) {
		for name, p := range fusionPools() {
			y1Ref, y2Ref := testField(g, 43), testField(g, 44)
			Axpy(par.Serial, b, 0.7, x1, y1Ref)
			Axpy(par.Serial, b, -1.3, x2, y2Ref)
			y1, y2 := testField(g, 43), testField(g, 44)
			AxpyAxpy(p, b, 0.7, x1, y1, -1.3, x2, y2)
			fieldsClose13(t, name+" y1", y1, y1Ref)
			fieldsClose13(t, name+" y2", y2, y2Ref)
		}
	}
}

func TestAxpbyPreMatchesMulAxpby(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	minv := testField(g, 51)
	r := testField(g, 52)
	for _, b := range fusionBounds(g) {
		for name, p := range fusionPools() {
			yRef := testField(g, 53)
			z := grid.NewField2D(g)
			Mul(par.Serial, b, minv, r, z)
			tmp := grid.NewField2D(g)
			Axpby(par.Serial, b, 0.9, yRef, 0.4, z, tmp)
			Copy(par.Serial, b, yRef, tmp)

			y := testField(g, 53)
			AxpbyPre(p, b, 0.9, y, 0.4, minv, r)
			fieldsClose13(t, name, y, yRef)

			// Identity variant.
			yID := testField(g, 54)
			yIDRef := testField(g, 54)
			Axpby(par.Serial, b, 0.9, yIDRef, 0.4, r, tmp)
			Copy(par.Serial, b, yIDRef, tmp)
			AxpbyPre(p, b, 0.9, yID, 0.4, nil, r)
			fieldsClose13(t, name+" identity", yID, yIDRef)
		}
	}
}

func TestFusedCGDirectionsMatchesComposed(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	minv := testField(g, 61)
	r := testField(g, 62)
	w := testField(g, 63)
	const beta = 0.37
	for _, b := range fusionBounds(g) {
		for name, pool := range fusionPools() {
			// Reference: u = minv⊙r; p = u + β·p; s = w + β·s.
			u := grid.NewField2D(g)
			Mul(par.Serial, b, minv, r, u)
			pRef, sRef := testField(g, 64), testField(g, 65)
			Xpay(par.Serial, b, u, beta, pRef)
			Xpay(par.Serial, b, w, beta, sRef)

			p, s := testField(g, 64), testField(g, 65)
			FusedCGDirections(pool, b, minv, r, w, beta, p, s)
			fieldsClose13(t, name+" p", p, pRef)
			fieldsClose13(t, name+" s", s, sRef)

			// Identity variant.
			pID, sID := testField(g, 66), testField(g, 67)
			pIDRef, sIDRef := testField(g, 66), testField(g, 67)
			Xpay(par.Serial, b, r, beta, pIDRef)
			Xpay(par.Serial, b, w, beta, sIDRef)
			FusedCGDirections(pool, b, nil, r, w, beta, pID, sID)
			fieldsClose13(t, name+" p id", pID, pIDRef)
			fieldsClose13(t, name+" s id", sID, sIDRef)
		}
	}
}

func TestFusedCGUpdateMatchesComposed(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 2)
	minv := testField(g, 71)
	pv := testField(g, 72)
	sv := testField(g, 73)
	const alpha = 0.21
	for _, b := range fusionBounds(g) {
		for name, pool := range fusionPools() {
			// Reference: x += α·p; r −= α·s; u = minv⊙r; γ = r·u; rr = r·r.
			xRef, rRef := testField(g, 74), testField(g, 75)
			Axpy(par.Serial, b, alpha, pv, xRef)
			Axpy(par.Serial, b, -alpha, sv, rRef)
			u := grid.NewField2D(g)
			Mul(par.Serial, b, minv, rRef, u)
			gammaRef := Dot(par.Serial, b, rRef, u)
			rrRef := Dot(par.Serial, b, rRef, rRef)

			x, r := testField(g, 74), testField(g, 75)
			gamma, rr := FusedCGUpdate(pool, b, alpha, pv, sv, x, r, minv)
			if !close13(gamma, gammaRef) || !close13(rr, rrRef) {
				t.Errorf("%s %v: (γ,rr) = (%v,%v), want (%v,%v)", name, b, gamma, rr, gammaRef, rrRef)
			}
			fieldsClose13(t, name+" x", x, xRef)
			fieldsClose13(t, name+" r", r, rRef)

			// Identity: γ == rr.
			xID, rID := testField(g, 74), testField(g, 75)
			gID, rrID := FusedCGUpdate(pool, b, alpha, pv, sv, xID, rID, nil)
			if gID != rrID {
				t.Errorf("%s: identity γ %v != rr %v", name, gID, rrID)
			}
			if !close13(rrID, rrRef) {
				t.Errorf("%s: identity rr = %v, want %v", name, rrID, rrRef)
			}
		}
	}
}

func TestFusedPPCGInnerMatchesComposed(t *testing.T) {
	g := grid.UnitGrid2D(19, 13, 3)
	minv := testField(g, 81)
	w := testField(g, 82)
	in := g.Interior()
	const alpha, beta = 0.83, 0.29
	// Matrix-powers style: extended bounds ⊇ interior, plus the plain
	// interior case.
	for _, b := range []grid.Bounds{in, in.Expand(1, g), in.Expand(2, g)} {
		for name, pool := range fusionPools() {
			// Reference: rtemp −= w; zscr = minv⊙rtemp; sd = α·sd + β·zscr
			// (all over b); z += sd (interior only).
			rtempRef, sdRef, zRef := testField(g, 83), testField(g, 84), testField(g, 85)
			Axpy(par.Serial, b, -1, w, rtempRef)
			zscr := grid.NewField2D(g)
			Mul(par.Serial, b, minv, rtempRef, zscr)
			tmp := grid.NewField2D(g)
			Axpby(par.Serial, b, alpha, sdRef, beta, zscr, tmp)
			Copy(par.Serial, b, sdRef, tmp)
			Axpy(par.Serial, in, 1, sdRef, zRef)

			rtemp, sd, z := testField(g, 83), testField(g, 84), testField(g, 85)
			FusedPPCGInner(pool, b, in, alpha, beta, w, rtemp, minv, sd, z)
			fieldsClose13(t, name+" rtemp", rtemp, rtempRef)
			fieldsClose13(t, name+" sd", sd, sdRef)
			fieldsClose13(t, name+" z", z, zRef)
		}
	}
}

func TestFused3DKernelsMatchComposed(t *testing.T) {
	g3, err := grid.NewGrid3D(11, 7, 5, 1, 0, 1, 0, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *grid.Field3D {
		f := grid.NewField3D(g3)
		rng := newRng(seed)
		for i := range f.Data {
			f.Data[i] = rng.Float64()*2 - 1
		}
		return f
	}
	r, w := mk(1), mk(2)
	in := g3.Interior()
	const alpha, beta = 0.31, 0.73
	for name, pool := range fusionPools() {
		// Directions: p = r + β·p; s = w + β·s.
		pRef, sRef := mk(3), mk(4)
		Xpay3D(par.Serial, in, r, beta, pRef)
		Xpay3D(par.Serial, in, w, beta, sRef)
		p, s := mk(3), mk(4)
		FusedCGDirections3D(pool, in, nil, r, w, beta, p, s)
		for i := range p.Data {
			if math.Abs(p.Data[i]-pRef.Data[i]) > 1e-13 || math.Abs(s.Data[i]-sRef.Data[i]) > 1e-13 {
				t.Fatalf("%s: 3D directions differ at %d", name, i)
			}
		}

		// Update: x += α·p; r −= α·s; rr (identity: γ == rr).
		xRef, rRef := mk(5), mk(6)
		Axpy3D(par.Serial, in, alpha, p, xRef)
		Axpy3D(par.Serial, in, -alpha, s, rRef)
		rrRef := Dot3D(par.Serial, in, rRef, rRef)
		x, rr2 := mk(5), mk(6)
		gamma, rr := FusedCGUpdate3D(pool, in, alpha, p, s, x, rr2, nil)
		if !close13(rr, rrRef) || !close13(gamma, rrRef) {
			t.Errorf("%s: 3D (γ,rr) = (%v,%v), want %v", name, gamma, rr, rrRef)
		}
		for i := range x.Data {
			if math.Abs(x.Data[i]-xRef.Data[i]) > 1e-13 || math.Abs(rr2.Data[i]-rRef.Data[i]) > 1e-13 {
				t.Fatalf("%s: 3D update differs at %d", name, i)
			}
		}

		// Folded diagonal: p = m⊙r + β·p and γ = Σ m·r·r.
		minv := mk(7)
		for i := range minv.Data {
			minv.Data[i] = 0.5 + math.Abs(minv.Data[i])
		}
		pm, sm := mk(8), mk(9)
		pmRef, smRef := mk(8), mk(9)
		u := mk(10)
		for i := range u.Data {
			u.Data[i] = minv.Data[i] * r.Data[i]
		}
		Xpay3D(par.Serial, in, u, beta, pmRef)
		Xpay3D(par.Serial, in, w, beta, smRef)
		FusedCGDirections3D(pool, in, minv, r, w, beta, pm, sm)
		fields3Close13(t, name+" folded p", pm, pmRef)
		fields3Close13(t, name+" folded s", sm, smRef)

		xm, rm := mk(11), mk(12)
		xmRef, rmRef := mk(11), mk(12)
		Axpy3D(par.Serial, in, alpha, pm, xmRef)
		Axpy3D(par.Serial, in, -alpha, sm, rmRef)
		var gammaRef float64
		for k := 0; k < g3.NZ; k++ {
			for j := 0; j < g3.NY; j++ {
				for i := 0; i < g3.NX; i++ {
					v := rmRef.At(i, j, k)
					gammaRef += minv.At(i, j, k) * v * v
				}
			}
		}
		gammaM, _ := FusedCGUpdate3D(pool, in, alpha, pm, sm, xm, rm, minv)
		if !close13(gammaM, gammaRef) {
			t.Errorf("%s: folded γ = %v, want %v", name, gammaM, gammaRef)
		}
		fields3Close13(t, name+" folded x", xm, xmRef)
		fields3Close13(t, name+" folded r", rm, rmRef)
	}
}

func TestDot3DMatchesNaive(t *testing.T) {
	g3, err := grid.NewGrid3D(9, 6, 4, 2, 0, 1, 0, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, y := grid.NewField3D(g3), grid.NewField3D(g3)
	rng := newRng(7)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
		y.Data[i] = rng.Float64()
	}
	var want float64
	for k := 0; k < g3.NZ; k++ {
		for j := 0; j < g3.NY; j++ {
			for i := 0; i < g3.NX; i++ {
				want += x.At(i, j, k) * y.At(i, j, k)
			}
		}
	}
	for name, pool := range fusionPools() {
		if got := Dot3D(pool, g3.Interior(), x, y); !close13(got, want) {
			t.Errorf("%s: Dot3D = %v, want %v (halo leak?)", name, got, want)
		}
	}
}

// newRng mirrors testField's seeding for 3D fields.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fields3Close13 asserts two 3D fields agree to 1e-13 everywhere.
func fields3Close13(t *testing.T, name string, got, want *grid.Field3D) {
	t.Helper()
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-13 {
			t.Fatalf("%s: differs at %d: %v vs %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestFusedPPCGInner3DMatchesComposed checks the fused 3D inner step
// against the composed sequence on extended bounds with a folded diagonal.
func TestFusedPPCGInner3DMatchesComposed(t *testing.T) {
	g3 := grid.UnitGrid3D(8, 7, 6, 2)
	in := g3.Interior()
	b := in.ExpandSides(1, 1, 0, 1, 1, 1, g3)
	mk := func(seed int64) *grid.Field3D {
		f := grid.NewField3D(g3)
		rng := newRng(seed)
		for i := range f.Data {
			f.Data[i] = rng.Float64()*2 - 1
		}
		return f
	}
	const alpha, beta = 0.42, 0.58
	for name, pool := range fusionPools() {
		w, minv := mk(20), mk(21)
		for i := range minv.Data {
			minv.Data[i] = 0.5 + math.Abs(minv.Data[i])
		}
		rtRef, sdRef, zRef := mk(22), mk(23), mk(24)
		rt, sd, z := mk(22), mk(23), mk(24)

		// Composed reference.
		Axpy3D(par.Serial, b, -1, w, rtRef)
		zscr := grid.NewField3D(g3)
		for k := b.Z0; k < b.Z1; k++ {
			for j := b.Y0; j < b.Y1; j++ {
				for i := b.X0; i < b.X1; i++ {
					zscr.Set(i, j, k, minv.At(i, j, k)*rtRef.At(i, j, k))
					sdRef.Set(i, j, k, alpha*sdRef.At(i, j, k)+beta*zscr.At(i, j, k))
				}
			}
		}
		Axpy3D(par.Serial, in, 1, sdRef, zRef)

		FusedPPCGInner3D(pool, b, in, alpha, beta, w, rt, minv, sd, z)
		fields3Close13(t, name+" rtemp", rt, rtRef)
		fields3Close13(t, name+" sd", sd, sdRef)
		fields3Close13(t, name+" z", z, zRef)
	}
}

// TestAxpbyPre3DAndDot23D covers the remaining fused 3D BLAS1 kernels.
func TestAxpbyPre3DAndDot23D(t *testing.T) {
	g3 := grid.UnitGrid3D(9, 5, 4, 1)
	in := g3.Interior()
	mk := func(seed int64) *grid.Field3D {
		f := grid.NewField3D(g3)
		rng := newRng(seed)
		for i := range f.Data {
			f.Data[i] = rng.Float64()*2 - 1
		}
		return f
	}
	for name, pool := range fusionPools() {
		y, r, minv := mk(30), mk(31), mk(32)
		yRef := y.Clone()
		const a, be = 0.7, -0.3
		for k := 0; k < g3.NZ; k++ {
			for j := 0; j < g3.NY; j++ {
				for i := 0; i < g3.NX; i++ {
					yRef.Set(i, j, k, a*yRef.At(i, j, k)+be*(minv.At(i, j, k)*r.At(i, j, k)))
				}
			}
		}
		AxpbyPre3D(pool, in, a, y, be, minv, r)
		fields3Close13(t, name+" axpbypre", y, yRef)

		x, yy, zz := mk(33), mk(34), mk(35)
		var wantXY, wantYZ float64
		for k := 0; k < g3.NZ; k++ {
			for j := 0; j < g3.NY; j++ {
				for i := 0; i < g3.NX; i++ {
					wantXY += x.At(i, j, k) * yy.At(i, j, k)
					wantYZ += yy.At(i, j, k) * zz.At(i, j, k)
				}
			}
		}
		xy, yz := Dot23D(pool, in, x, yy, zz)
		if !close13(xy, wantXY) || !close13(yz, wantYZ) {
			t.Errorf("%s: Dot23D = (%v,%v), want (%v,%v)", name, xy, yz, wantXY, wantYZ)
		}
	}
}
