// Package kernels implements the memory-bandwidth-bound vector kernels the
// TeaLeaf solvers are built from: dot products, AXPY-family triads, copies
// and scales, each over an arbitrary Bounds rectangle of a halo-padded
// field. These are the "two loads and one store per (one or two) floating
// point operations" local operations of §III-A of the paper.
//
// All kernels take a *par.Pool and parallelise over grid rows with a
// static block schedule. All fields passed to one call must live on the
// same grid (they do, throughout the solvers: every solver vector is
// allocated on the rank-local grid).
package kernels

import (
	"math"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// Dot returns Σ x·y over the cells of b.
func Dot(p *par.Pool, b grid.Bounds, x, y *grid.Field2D) float64 {
	if b.Empty() {
		return 0
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	return p.ForReduce(b.Y0, b.Y1, func(k0, k1 int) float64 {
		var s float64
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				s += xd[base+j] * yd[base+j]
			}
		}
		return s
	})
}

// Norm2Sq returns Σ x² over the cells of b.
func Norm2Sq(p *par.Pool, b grid.Bounds, x *grid.Field2D) float64 {
	return Dot(p, b, x, x)
}

// Norm2 returns the Euclidean norm of x over b.
func Norm2(p *par.Pool, b grid.Bounds, x *grid.Field2D) float64 {
	return math.Sqrt(Norm2Sq(p, b, x))
}

// Axpy computes y += alpha*x over b.
func Axpy(p *par.Pool, b grid.Bounds, alpha float64, x, y *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				yd[base+j] += alpha * xd[base+j]
			}
		}
	})
}

// Xpay computes y = x + beta*y over b (the CG direction update
// p = z + βp).
func Xpay(p *par.Pool, b grid.Bounds, x *grid.Field2D, beta float64, y *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				yd[base+j] = xd[base+j] + beta*yd[base+j]
			}
		}
	})
}

// Axpby computes z = alpha*x + beta*y over b.
func Axpby(p *par.Pool, b grid.Bounds, alpha float64, x *grid.Field2D, beta float64, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				zd[base+j] = alpha*xd[base+j] + beta*yd[base+j]
			}
		}
	})
}

// Copy copies src into dst over b.
func Copy(p *par.Pool, b grid.Bounds, dst, src *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			lo := g.Index(b.X0, k)
			hi := g.Index(b.X1, k)
			copy(dd[lo:hi], sd[lo:hi])
		}
	})
}

// Scale computes x *= alpha over b.
func Scale(p *par.Pool, b grid.Bounds, alpha float64, x *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd := x.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				xd[base+j] *= alpha
			}
		}
	})
}

// ScaleTo computes dst = alpha*src over b.
func ScaleTo(p *par.Pool, b grid.Bounds, alpha float64, src, dst *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				dd[base+j] = alpha * sd[base+j]
			}
		}
	})
}

// Fill sets x = v over b.
func Fill(p *par.Pool, b grid.Bounds, v float64, x *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd := x.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				xd[base+j] = v
			}
		}
	})
}

// Sub computes z = x - y over b.
func Sub(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				zd[base+j] = xd[base+j] - yd[base+j]
			}
		}
	})
}

// Mul computes z = x ⊙ y (elementwise) over b; used to apply the diagonal
// (point-Jacobi) preconditioner z = M⁻¹ r when M⁻¹ is stored as a field.
func Mul(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				zd[base+j] = xd[base+j] * yd[base+j]
			}
		}
	})
}

// AxpyDot fuses y += alpha*x with the dot product r·r in a single pass;
// the fused-reduction variant of the CG residual update. Returns Σ y·y
// over b after the update (y is typically the residual).
func AxpyDot(p *par.Pool, b grid.Bounds, alpha float64, x, y *grid.Field2D) float64 {
	if b.Empty() {
		return 0
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	return p.ForReduce(b.Y0, b.Y1, func(k0, k1 int) float64 {
		var s float64
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				v := yd[base+j] + alpha*xd[base+j]
				yd[base+j] = v
				s += v * v
			}
		}
		return s
	})
}

// Dot2 computes the two dot products x·y and y·z in one pass (the paper's
// §VII proposes restructuring the Krylov solver so multiple dot products
// share a single reduction step).
func Dot2(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) (xy, yz float64) {
	if b.Empty() {
		return 0, 0
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	return p.ForReduce2(b.Y0, b.Y1, func(k0, k1 int) (float64, float64) {
		var a, c float64
		for k := k0; k < k1; k++ {
			base := g.Index(0, k)
			for j := b.X0; j < b.X1; j++ {
				a += xd[base+j] * yd[base+j]
				c += yd[base+j] * zd[base+j]
			}
		}
		return a, c
	})
}
