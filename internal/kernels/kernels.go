// Package kernels implements the memory-bandwidth-bound vector kernels the
// TeaLeaf solvers are built from: dot products, AXPY-family triads, copies
// and scales, each over an arbitrary Bounds rectangle of a halo-padded
// field. These are the "two loads and one store per (one or two) floating
// point operations" local operations of §III-A of the paper.
//
// All kernels take a *par.Pool and parallelise over grid rows with a
// static block schedule. All fields passed to one call must live on the
// same grid (they do, throughout the solvers: every solver vector is
// allocated on the rank-local grid).
//
// Inner loops are bounds-check-hoisted by re-slicing each row to its
// exact extent (xs := xd[o : o+n : o+n]) and 4-way unrolled with
// independent accumulators, which the gc compiler turns into straight-line
// code with no per-element bounds checks. Reductions keep a fixed
// accumulator association (4 lanes folded pairwise), so results are
// bit-reproducible for a fixed worker count — but differ in the last bits
// from a naive serial sum, which is why tests compare against tolerances.
//
// The Fused* kernels combine the multiple BLAS1 passes of one solver
// iteration into single sweeps, the node-level half of §VII's proposal to
// restructure the Krylov loop around one reduction per iteration; the
// matching stencil-fused sweeps live in package stencil.
package kernels

import (
	"math"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
)

// row re-slices one padded row of d to the columns [b.X0, b.X1) of row k.
// The three-index form pins cap so the compiler can drop bounds checks.
func row(g *grid.Grid2D, b grid.Bounds, d []float64, k int) []float64 {
	o := g.Index(b.X0, k)
	return d[o : o+b.X1-b.X0 : o+b.X1-b.X0]
}

// tileBounds converts a scheduler tile back to 2D grid bounds, so tile
// bodies reuse the row helper unchanged.
func tileBounds(t par.Tile) grid.Bounds {
	return grid.Bounds{X0: t.X0, X1: t.X1, Y0: t.Y0, Y1: t.Y1}
}

// box is the scheduler iteration box for 2D grid bounds.
func box(b grid.Bounds) par.Box { return par.Box2D(b.X0, b.X1, b.Y0, b.Y1) }

// Dot returns Σ x·y over the cells of b.
func Dot(p *par.Pool, b grid.Bounds, x, y *grid.Field2D) float64 {
	if b.Empty() {
		return 0
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	return p.ForTilesReduceN(1, box(b), func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var s0, s1, s2, s3 float64
		for k := tb.Y0; k < tb.Y1; k++ {
			xs := row(g, tb, xd, k)
			ys := row(g, tb, yd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				s0 += xs[j] * ys[j]
				s1 += xs[j+1] * ys[j+1]
				s2 += xs[j+2] * ys[j+2]
				s3 += xs[j+3] * ys[j+3]
			}
			for ; j < n; j++ {
				s0 += xs[j] * ys[j]
			}
		}
		acc[0] += (s0 + s1) + (s2 + s3)
	})[0]
}

// Norm2Sq returns Σ x² over the cells of b.
func Norm2Sq(p *par.Pool, b grid.Bounds, x *grid.Field2D) float64 {
	return Dot(p, b, x, x)
}

// Norm2 returns the Euclidean norm of x over b.
func Norm2(p *par.Pool, b grid.Bounds, x *grid.Field2D) float64 {
	return math.Sqrt(Norm2Sq(p, b, x))
}

// Axpy computes y += alpha*x over b.
func Axpy(p *par.Pool, b grid.Bounds, alpha float64, x, y *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			ys := row(g, b, yd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				ys[j] += alpha * xs[j]
				ys[j+1] += alpha * xs[j+1]
				ys[j+2] += alpha * xs[j+2]
				ys[j+3] += alpha * xs[j+3]
			}
			for ; j < n; j++ {
				ys[j] += alpha * xs[j]
			}
		}
	})
}

// Xpay computes y = x + beta*y over b (the CG direction update
// p = z + βp).
func Xpay(p *par.Pool, b grid.Bounds, x *grid.Field2D, beta float64, y *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			ys := row(g, b, yd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				ys[j] = xs[j] + beta*ys[j]
				ys[j+1] = xs[j+1] + beta*ys[j+1]
				ys[j+2] = xs[j+2] + beta*ys[j+2]
				ys[j+3] = xs[j+3] + beta*ys[j+3]
			}
			for ; j < n; j++ {
				ys[j] = xs[j] + beta*ys[j]
			}
		}
	})
}

// Axpby computes z = alpha*x + beta*y over b.
func Axpby(p *par.Pool, b grid.Bounds, alpha float64, x *grid.Field2D, beta float64, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			ys := row(g, b, yd, k)
			zs := row(g, b, zd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				zs[j] = alpha*xs[j] + beta*ys[j]
				zs[j+1] = alpha*xs[j+1] + beta*ys[j+1]
				zs[j+2] = alpha*xs[j+2] + beta*ys[j+2]
				zs[j+3] = alpha*xs[j+3] + beta*ys[j+3]
			}
			for ; j < n; j++ {
				zs[j] = alpha*xs[j] + beta*ys[j]
			}
		}
	})
}

// Copy copies src into dst over b.
func Copy(p *par.Pool, b grid.Bounds, dst, src *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			lo := g.Index(b.X0, k)
			hi := g.Index(b.X1, k)
			copy(dd[lo:hi], sd[lo:hi])
		}
	})
}

// Scale computes x *= alpha over b.
func Scale(p *par.Pool, b grid.Bounds, alpha float64, x *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd := x.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				xs[j] *= alpha
				xs[j+1] *= alpha
				xs[j+2] *= alpha
				xs[j+3] *= alpha
			}
			for ; j < n; j++ {
				xs[j] *= alpha
			}
		}
	})
}

// ScaleTo computes dst = alpha*src over b.
func ScaleTo(p *par.Pool, b grid.Bounds, alpha float64, src, dst *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := src.Grid
	sd, dd := src.Data, dst.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			ss := row(g, b, sd, k)
			ds := row(g, b, dd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				ds[j] = alpha * ss[j]
				ds[j+1] = alpha * ss[j+1]
				ds[j+2] = alpha * ss[j+2]
				ds[j+3] = alpha * ss[j+3]
			}
			for ; j < n; j++ {
				ds[j] = alpha * ss[j]
			}
		}
	})
}

// Fill sets x = v over b.
func Fill(p *par.Pool, b grid.Bounds, v float64, x *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd := x.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			for j := 0; j < n; j++ {
				xs[j] = v
			}
		}
	})
}

// Sub computes z = x - y over b.
func Sub(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			ys := row(g, b, yd, k)
			zs := row(g, b, zd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				zs[j] = xs[j] - ys[j]
				zs[j+1] = xs[j+1] - ys[j+1]
				zs[j+2] = xs[j+2] - ys[j+2]
				zs[j+3] = xs[j+3] - ys[j+3]
			}
			for ; j < n; j++ {
				zs[j] = xs[j] - ys[j]
			}
		}
	})
}

// Mul computes z = x ⊙ y (elementwise) over b; used to apply the diagonal
// (point-Jacobi) preconditioner z = M⁻¹ r when M⁻¹ is stored as a field.
func Mul(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			xs := row(g, b, xd, k)
			ys := row(g, b, yd, k)
			zs := row(g, b, zd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				zs[j] = xs[j] * ys[j]
				zs[j+1] = xs[j+1] * ys[j+1]
				zs[j+2] = xs[j+2] * ys[j+2]
				zs[j+3] = xs[j+3] * ys[j+3]
			}
			for ; j < n; j++ {
				zs[j] = xs[j] * ys[j]
			}
		}
	})
}

// AxpyDot fuses y += alpha*x with the dot product r·r in a single pass;
// the fused-reduction variant of the CG residual update. Returns Σ y·y
// over b after the update (y is typically the residual).
func AxpyDot(p *par.Pool, b grid.Bounds, alpha float64, x, y *grid.Field2D) float64 {
	if b.Empty() {
		return 0
	}
	g := x.Grid
	xd, yd := x.Data, y.Data
	return p.ForTilesReduceN(1, box(b), func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var s0, s1 float64
		for k := tb.Y0; k < tb.Y1; k++ {
			xs := row(g, tb, xd, k)
			ys := row(g, tb, yd, k)
			j := 0
			for ; j+1 < n; j += 2 {
				v0 := ys[j] + alpha*xs[j]
				ys[j] = v0
				s0 += v0 * v0
				v1 := ys[j+1] + alpha*xs[j+1]
				ys[j+1] = v1
				s1 += v1 * v1
			}
			for ; j < n; j++ {
				v := ys[j] + alpha*xs[j]
				ys[j] = v
				s0 += v * v
			}
		}
		acc[0] += s0 + s1
	})[0]
}

// Dot2 computes the two dot products x·y and y·z in one pass (the paper's
// §VII proposes restructuring the Krylov solver so multiple dot products
// share a single reduction step).
func Dot2(p *par.Pool, b grid.Bounds, x, y, z *grid.Field2D) (xy, yz float64) {
	if b.Empty() {
		return 0, 0
	}
	g := x.Grid
	xd, yd, zd := x.Data, y.Data, z.Data
	acc := p.ForTilesReduceN(2, box(b), func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var a0, a1, c0, c1 float64
		for k := tb.Y0; k < tb.Y1; k++ {
			xs := row(g, tb, xd, k)
			ys := row(g, tb, yd, k)
			zs := row(g, tb, zd, k)
			j := 0
			for ; j+1 < n; j += 2 {
				a0 += xs[j] * ys[j]
				c0 += ys[j] * zs[j]
				a1 += xs[j+1] * ys[j+1]
				c1 += ys[j+1] * zs[j+1]
			}
			for ; j < n; j++ {
				a0 += xs[j] * ys[j]
				c0 += ys[j] * zs[j]
			}
		}
		acc[0] += a0 + a1
		acc[1] += c0 + c1
	})
	return acc[0], acc[1]
}

// PrecondDot fuses the diagonal preconditioner application z = minv ⊙ r
// with the dot product r·z in one sweep (the PCG ρ = (r, M⁻¹r) setup pass
// without a separate preconditioner sweep). A nil minv selects the
// identity: z is filled with r (unless z aliases r) and r·r is returned.
func PrecondDot(p *par.Pool, b grid.Bounds, minv, r, z *grid.Field2D) float64 {
	if b.Empty() {
		return 0
	}
	if minv == nil {
		if z != r {
			Copy(p, b, z, r)
		}
		return Dot(p, b, r, r)
	}
	g := r.Grid
	md, rd, zd := minv.Data, r.Data, z.Data
	return p.ForTilesReduceN(1, box(b), func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var s0, s1 float64
		for k := tb.Y0; k < tb.Y1; k++ {
			ms := row(g, tb, md, k)
			rs := row(g, tb, rd, k)
			zs := row(g, tb, zd, k)
			j := 0
			for ; j+1 < n; j += 2 {
				v0 := ms[j] * rs[j]
				zs[j] = v0
				s0 += rs[j] * v0
				v1 := ms[j+1] * rs[j+1]
				zs[j+1] = v1
				s1 += rs[j+1] * v1
			}
			for ; j < n; j++ {
				v := ms[j] * rs[j]
				zs[j] = v
				s0 += rs[j] * v
			}
		}
		acc[0] += s0 + s1
	})[0]
}

// AxpyAxpy fuses two independent AXPYs into one sweep:
// y1 += a1*x1 and y2 += a2*x2. It is the fused solution/residual update
// u += α·p, r −= α·w shared by the Chebyshev and PPCG outer loops.
func AxpyAxpy(p *par.Pool, b grid.Bounds, a1 float64, x1, y1 *grid.Field2D, a2 float64, x2, y2 *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := x1.Grid
	x1d, y1d, x2d, y2d := x1.Data, y1.Data, x2.Data, y2.Data
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			x1s := row(g, b, x1d, k)
			y1s := row(g, b, y1d, k)
			x2s := row(g, b, x2d, k)
			y2s := row(g, b, y2d, k)
			j := 0
			for ; j+1 < n; j += 2 {
				y1s[j] += a1 * x1s[j]
				y2s[j] += a2 * x2s[j]
				y1s[j+1] += a1 * x1s[j+1]
				y2s[j+1] += a2 * x2s[j+1]
			}
			for ; j < n; j++ {
				y1s[j] += a1 * x1s[j]
				y2s[j] += a2 * x2s[j]
			}
		}
	})
}

// AxpbyPre fuses the diagonal preconditioner into the Chebyshev direction
// update: y = a*y + beta*(minv ⊙ r) in one sweep (nil minv → identity).
// This replaces the two-pass z = M⁻¹r; p = α·p + β·z sequence of the
// Chebyshev main loop.
func AxpbyPre(p *par.Pool, b grid.Bounds, a float64, y *grid.Field2D, beta float64, minv, r *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := y.Grid
	yd, rd := y.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	n := b.X1 - b.X0
	p.For(b.Y0, b.Y1, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			ys := row(g, b, yd, k)
			rs := row(g, b, rd, k)
			if md == nil {
				j := 0
				for ; j+1 < n; j += 2 {
					ys[j] = a*ys[j] + beta*rs[j]
					ys[j+1] = a*ys[j+1] + beta*rs[j+1]
				}
				for ; j < n; j++ {
					ys[j] = a*ys[j] + beta*rs[j]
				}
				continue
			}
			ms := row(g, b, md, k)
			j := 0
			for ; j+1 < n; j += 2 {
				ys[j] = a*ys[j] + beta*(ms[j]*rs[j])
				ys[j+1] = a*ys[j+1] + beta*(ms[j+1]*rs[j+1])
			}
			for ; j < n; j++ {
				ys[j] = a*ys[j] + beta*(ms[j]*rs[j])
			}
		}
	})
}

// FusedCGDirections is pass one of the single-reduction
// (Chronopoulos–Gear) CG iteration: both direction recurrences in one
// sweep,
//
//	p = (minv ⊙ r) + β·p    (= u + β·p, with the preconditioner folded)
//	s = w + β·s             (maintains s = A·p without a second matvec)
//
// with nil minv selecting the identity (u = r).
func FusedCGDirections(pl *par.Pool, b grid.Bounds, minv, r, w *grid.Field2D, beta float64, p, s *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := r.Grid
	rd, wd, pd, sd := r.Data, w.Data, p.Data, s.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	// Each row runs as two narrow bursts (p-recurrence, then
	// s-recurrence): a 16 KB row stays cache-resident between bursts, and
	// two-stream bursts sustain measurably higher memory bandwidth than
	// one four-stream loop on wide grids.
	pl.ForTiles(box(b), func(t par.Tile) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		for k := tb.Y0; k < tb.Y1; k++ {
			rs := row(g, tb, rd, k)
			ps := row(g, tb, pd, k)
			if md == nil {
				j := 0
				for ; j+3 < n; j += 4 {
					ps[j] = rs[j] + beta*ps[j]
					ps[j+1] = rs[j+1] + beta*ps[j+1]
					ps[j+2] = rs[j+2] + beta*ps[j+2]
					ps[j+3] = rs[j+3] + beta*ps[j+3]
				}
				for ; j < n; j++ {
					ps[j] = rs[j] + beta*ps[j]
				}
			} else {
				ms := row(g, tb, md, k)
				j := 0
				for ; j+3 < n; j += 4 {
					ps[j] = ms[j]*rs[j] + beta*ps[j]
					ps[j+1] = ms[j+1]*rs[j+1] + beta*ps[j+1]
					ps[j+2] = ms[j+2]*rs[j+2] + beta*ps[j+2]
					ps[j+3] = ms[j+3]*rs[j+3] + beta*ps[j+3]
				}
				for ; j < n; j++ {
					ps[j] = ms[j]*rs[j] + beta*ps[j]
				}
			}
			ws := row(g, tb, wd, k)
			ss := row(g, tb, sd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				ss[j] = ws[j] + beta*ss[j]
				ss[j+1] = ws[j+1] + beta*ss[j+1]
				ss[j+2] = ws[j+2] + beta*ss[j+2]
				ss[j+3] = ws[j+3] + beta*ss[j+3]
			}
			for ; j < n; j++ {
				ss[j] = ws[j] + beta*ss[j]
			}
		}
	})
}

// FusedCGUpdate is pass two of the single-reduction CG iteration: the
// solution and residual updates fused with both dot products the next
// step scalar needs,
//
//	x += α·p;  r −= α·s;  γ = Σ r·(minv ⊙ r);  rr = Σ r·r
//
// in one sweep. nil minv selects the identity, for which γ == rr.
func FusedCGUpdate(pl *par.Pool, b grid.Bounds, alpha float64, p, s, x, r, minv *grid.Field2D) (gamma, rr float64) {
	if b.Empty() {
		return 0, 0
	}
	g := r.Grid
	pd, sd, xd, rd := p.Data, s.Data, x.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	// Row-fissioned like FusedCGDirections: the x-update burst, then the
	// r-update burst carrying both dot products (the freshly written r row
	// is still in cache for the γ accumulation).
	acc := pl.ForTilesReduceN(2, box(b), fusedCGUpdateBody(g, alpha, pd, sd, xd, rd, md))
	return acc[0], acc[1]
}

// FusedCGUpdateChain is FusedCGUpdate restricted to one chain band's
// tile range [t0,t1): same tile body, but the (γ, rr) partials land in
// the per-tile accumulator instead of being folded immediately, so a
// temporal-blocked cycle can run the update band-by-band and fold once
// at the end of the sweep with ForTilesReduceN's exact bits. With a nil
// minv the folded acc[0] equals acc[1] (γ == rr), as in FusedCGUpdate.
func FusedCGUpdateChain(pl *par.Pool, acc *par.ChainAccum, t0, t1 int, alpha float64, p, s, x, r, minv *grid.Field2D) {
	g := r.Grid
	pd, sd, xd, rd := p.Data, s.Data, x.Data, r.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTilesChunk(acc, t0, t1, fusedCGUpdateBody(g, alpha, pd, sd, xd, rd, md))
}

// fusedCGUpdateBody is the tile body shared by FusedCGUpdate and
// FusedCGUpdateChain — one closure, so the chained and unchained sweeps
// cannot drift bit-wise.
func fusedCGUpdateBody(g *grid.Grid2D, alpha float64, pd, sd, xd, rd, md []float64) func(t par.Tile, acc []float64) {
	return func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var g0, g1, rr0, rr1 float64
		for k := tb.Y0; k < tb.Y1; k++ {
			ps := row(g, tb, pd, k)
			xs := row(g, tb, xd, k)
			j := 0
			for ; j+3 < n; j += 4 {
				xs[j] += alpha * ps[j]
				xs[j+1] += alpha * ps[j+1]
				xs[j+2] += alpha * ps[j+2]
				xs[j+3] += alpha * ps[j+3]
			}
			for ; j < n; j++ {
				xs[j] += alpha * ps[j]
			}
			ss := row(g, tb, sd, k)
			rs := row(g, tb, rd, k)
			if md == nil {
				j = 0
				for ; j+1 < n; j += 2 {
					v0 := rs[j] - alpha*ss[j]
					rs[j] = v0
					rr0 += v0 * v0
					v1 := rs[j+1] - alpha*ss[j+1]
					rs[j+1] = v1
					rr1 += v1 * v1
				}
				for ; j < n; j++ {
					v := rs[j] - alpha*ss[j]
					rs[j] = v
					rr0 += v * v
				}
				continue
			}
			ms := row(g, tb, md, k)
			j = 0
			for ; j+1 < n; j += 2 {
				v0 := rs[j] - alpha*ss[j]
				rs[j] = v0
				g0 += ms[j] * v0 * v0
				rr0 += v0 * v0
				v1 := rs[j+1] - alpha*ss[j+1]
				rs[j+1] = v1
				g1 += ms[j+1] * v1 * v1
				rr1 += v1 * v1
			}
			for ; j < n; j++ {
				v := rs[j] - alpha*ss[j]
				rs[j] = v
				g0 += ms[j] * v * v
				rr0 += v * v
			}
		}
		if md == nil {
			acc[0] += rr0 + rr1
			acc[1] += rr0 + rr1
		} else {
			acc[0] += g0 + g1
			acc[1] += rr0 + rr1
		}
	}
}

// FusedPPCGInner is the fused Chebyshev inner step of PPCG: the residual
// update, the (folded diagonal) preconditioner application, the
// three-term direction recurrence and the correction accumulation in one
// sweep instead of four,
//
//	rtemp −= w
//	sd     = α·sd + β·(minv ⊙ rtemp)     over b (matrix-powers bounds)
//	z     += sd                           over in (the interior) only
//
// b must contain in; rows outside in update rtemp/sd but not z, exactly
// as the unfused schedule does on extended matrix-powers bounds. nil minv
// selects the identity preconditioner.
func FusedPPCGInner(pl *par.Pool, b, in grid.Bounds, alpha, beta float64, w, rtemp, minv, sd, z *grid.Field2D) {
	if b.Empty() {
		return
	}
	g := rtemp.Grid
	wd, rd, sdd, zd := w.Data, rtemp.Data, sd.Data, z.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTiles(box(b), func(t par.Tile) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		// Column range of the interior within this tile's row slices (a
		// tile may lie wholly outside the interior columns).
		xlo, xhi := max(in.X0, tb.X0), min(in.X1, tb.X1)
		zb := grid.Bounds{X0: xlo, X1: xhi, Y0: in.Y0, Y1: in.Y1}
		for k := tb.Y0; k < tb.Y1; k++ {
			ws := row(g, tb, wd, k)
			rs := row(g, tb, rd, k)
			ss := row(g, tb, sdd, k)
			if md == nil {
				for j := 0; j < n; j++ {
					v := rs[j] - ws[j]
					rs[j] = v
					ss[j] = alpha*ss[j] + beta*v
				}
			} else {
				ms := row(g, tb, md, k)
				for j := 0; j < n; j++ {
					v := rs[j] - ws[j]
					rs[j] = v
					ss[j] = alpha*ss[j] + beta*(ms[j]*v)
				}
			}
			if k >= in.Y0 && k < in.Y1 && xhi > xlo {
				zs := row(g, zb, zd, k)
				sz := ss[xlo-tb.X0 : xhi-tb.X0]
				j := 0
				for ; j+1 < len(sz); j += 2 {
					zs[j] += sz[j]
					zs[j+1] += sz[j+1]
				}
				for ; j < len(sz); j++ {
					zs[j] += sz[j]
				}
			}
		}
	})
}

// PipelinedCGStep is the whole vector phase of a pipelined
// (Ghysels–Vanroose) CG iteration in ONE sweep: per cache-resident row
// it advances the three direction recurrences and immediately applies
// the three updates they feed, folding in the dot products whose
// reduction the next pass overlaps,
//
//	p = (minv ⊙ r) + β·p;  x += α·p
//	s = w + β·s;           r −= α·s;  rr = Σ r·r
//	z = n + β·z;           w −= α·z;  γ = Σ r·(minv ⊙ r);  δ = Σ (minv ⊙ r)·w
//
// with the dots taken on the freshly updated r and w. s tracks A·M⁻¹·p
// and z tracks A·M⁻¹·s, so w advances by recurrence instead of a second
// matvec. nil minv selects the identity, for which γ == rr. Fusing the
// direction and update passes is what pays for pipelining's extra
// vectors: the six recurrences visit eight fields, and one pass loads
// each row from DRAM once where the textbook two-pass form streams the
// whole working set twice — the difference between the pipelined engine
// costing ~30% more traffic than the fused engine and running at
// near-parity, so the overlapped reduction round is pure win.
func PipelinedCGStep(pl *par.Pool, b grid.Bounds, minv, r, w, nv *grid.Field2D, beta, alpha float64, p, s, z, x *grid.Field2D) (gamma, delta, rr float64) {
	if b.Empty() {
		return 0, 0, 0
	}
	g := r.Grid
	rd, wd, nd, pd, sd, zd, xd := r.Data, w.Data, nv.Data, p.Data, s.Data, z.Data, x.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	acc := pl.ForTilesReduceN(3, box(b), pipelinedCGStepBody(g, beta, alpha, md, rd, wd, nd, pd, sd, zd, xd))
	if md == nil {
		return acc[2], acc[1], acc[2]
	}
	return acc[0], acc[1], acc[2]
}

// PipelinedCGStepChain is PipelinedCGStep restricted to one chain band's
// tile range [t0,t1): same tile body, with the (γ, δ, rr) partials
// landing in the per-tile accumulator for an end-of-sweep fold. With a
// nil minv the caller maps the folded γ to rr, exactly as
// PipelinedCGStep's return does.
func PipelinedCGStepChain(pl *par.Pool, acc *par.ChainAccum, t0, t1 int, minv, r, w, nv *grid.Field2D, beta, alpha float64, p, s, z, x *grid.Field2D) {
	g := r.Grid
	rd, wd, nd, pd, sd, zd, xd := r.Data, w.Data, nv.Data, p.Data, s.Data, z.Data, x.Data
	var md []float64
	if minv != nil {
		md = minv.Data
	}
	pl.ForTilesChunk(acc, t0, t1, pipelinedCGStepBody(g, beta, alpha, md, rd, wd, nd, pd, sd, zd, xd))
}

// pipelinedCGStepBody is the tile body shared by PipelinedCGStep and
// PipelinedCGStepChain — one closure, so the chained and unchained
// sweeps cannot drift bit-wise.
func pipelinedCGStepBody(g *grid.Grid2D, beta, alpha float64, md, rd, wd, nd, pd, sd, zd, xd []float64) func(t par.Tile, acc []float64) {
	return func(t par.Tile, acc []float64) {
		tb := tileBounds(t)
		n := tb.X1 - tb.X0
		var ga, de, rra float64
		for k := tb.Y0; k < tb.Y1; k++ {
			rs := row(g, tb, rd, k)
			ps := row(g, tb, pd, k)
			xs := row(g, tb, xd, k)
			// Burst 1: the p recurrence (old r) and the x update it feeds.
			if md == nil {
				j := 0
				for ; j+3 < n; j += 4 {
					p0 := rs[j] + beta*ps[j]
					ps[j] = p0
					xs[j] += alpha * p0
					p1 := rs[j+1] + beta*ps[j+1]
					ps[j+1] = p1
					xs[j+1] += alpha * p1
					p2 := rs[j+2] + beta*ps[j+2]
					ps[j+2] = p2
					xs[j+2] += alpha * p2
					p3 := rs[j+3] + beta*ps[j+3]
					ps[j+3] = p3
					xs[j+3] += alpha * p3
				}
				for ; j < n; j++ {
					p0 := rs[j] + beta*ps[j]
					ps[j] = p0
					xs[j] += alpha * p0
				}
			} else {
				ms := row(g, tb, md, k)
				j := 0
				for ; j+3 < n; j += 4 {
					p0 := ms[j]*rs[j] + beta*ps[j]
					ps[j] = p0
					xs[j] += alpha * p0
					p1 := ms[j+1]*rs[j+1] + beta*ps[j+1]
					ps[j+1] = p1
					xs[j+1] += alpha * p1
					p2 := ms[j+2]*rs[j+2] + beta*ps[j+2]
					ps[j+2] = p2
					xs[j+2] += alpha * p2
					p3 := ms[j+3]*rs[j+3] + beta*ps[j+3]
					ps[j+3] = p3
					xs[j+3] += alpha * p3
				}
				for ; j < n; j++ {
					p0 := ms[j]*rs[j] + beta*ps[j]
					ps[j] = p0
					xs[j] += alpha * p0
				}
			}
			// Burst 2: the s recurrence (old w), the r update, and rr.
			ws := row(g, tb, wd, k)
			ss := row(g, tb, sd, k)
			var rr0, rr1 float64
			j := 0
			for ; j+1 < n; j += 2 {
				s0 := ws[j] + beta*ss[j]
				ss[j] = s0
				v0 := rs[j] - alpha*s0
				rs[j] = v0
				rr0 += v0 * v0
				s1 := ws[j+1] + beta*ss[j+1]
				ss[j+1] = s1
				v1 := rs[j+1] - alpha*s1
				rs[j+1] = v1
				rr1 += v1 * v1
			}
			for ; j < n; j++ {
				s0 := ws[j] + beta*ss[j]
				ss[j] = s0
				v := rs[j] - alpha*s0
				rs[j] = v
				rr0 += v * v
			}
			rra += rr0 + rr1
			// Burst 3: the z recurrence, the w update, and γ, δ against the
			// new r still in cache.
			ns := row(g, tb, nd, k)
			zs := row(g, tb, zd, k)
			if md == nil {
				var d0, d1 float64
				j = 0
				for ; j+1 < n; j += 2 {
					z0 := ns[j] + beta*zs[j]
					zs[j] = z0
					v0 := ws[j] - alpha*z0
					ws[j] = v0
					d0 += rs[j] * v0
					z1 := ns[j+1] + beta*zs[j+1]
					zs[j+1] = z1
					v1 := ws[j+1] - alpha*z1
					ws[j+1] = v1
					d1 += rs[j+1] * v1
				}
				for ; j < n; j++ {
					z0 := ns[j] + beta*zs[j]
					zs[j] = z0
					v := ws[j] - alpha*z0
					ws[j] = v
					d0 += rs[j] * v
				}
				de += d0 + d1
				continue
			}
			ms := row(g, tb, md, k)
			var g0, g1, d0, d1 float64
			j = 0
			for ; j+1 < n; j += 2 {
				z0 := ns[j] + beta*zs[j]
				zs[j] = z0
				v0 := ws[j] - alpha*z0
				ws[j] = v0
				u0 := ms[j] * rs[j]
				g0 += u0 * rs[j]
				d0 += u0 * v0
				z1 := ns[j+1] + beta*zs[j+1]
				zs[j+1] = z1
				v1 := ws[j+1] - alpha*z1
				ws[j+1] = v1
				u1 := ms[j+1] * rs[j+1]
				g1 += u1 * rs[j+1]
				d1 += u1 * v1
			}
			for ; j < n; j++ {
				z0 := ns[j] + beta*zs[j]
				zs[j] = z0
				v := ws[j] - alpha*z0
				ws[j] = v
				u := ms[j] * rs[j]
				g0 += u * rs[j]
				d0 += u * v
			}
			ga += g0 + g1
			de += d0 + d1
		}
		acc[0] += ga
		acc[1] += de
		acc[2] += rra
	}
}
