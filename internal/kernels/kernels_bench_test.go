package kernels

import (
	"fmt"
	"testing"

	"tealeaf/internal/grid"
	"tealeaf/internal/par"
	"tealeaf/internal/stencil"
)

// Per-kernel benchmarks at the paper-relevant mesh sizes. b.SetBytes is
// the kernel's memory traffic per sweep (reads + writes, 8 bytes each,
// counting read-modify-write fields twice), so the MB/s column is the
// achieved effective bandwidth — the figure of merit for every kernel in
// this package (§III-A).

func benchGrid(n int) *grid.Grid2D { return grid.UnitGrid2D(n, n, 2) }

func benchField(g *grid.Grid2D, seed int64) *grid.Field2D {
	return testField(g, seed)
}

func benchOp(g *grid.Grid2D) *stencil.Operator2D {
	den := grid.NewField2D(g)
	den.Fill(1.7)
	op, err := stencil.BuildOperator2D(par.Serial, den, 0.04, stencil.Conductivity, stencil.AllPhysical)
	if err != nil {
		panic(err)
	}
	return op
}

func sizes() []int { return []int{1024, 2048} }

func BenchmarkDot(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			x, y := benchField(g, 1), benchField(g, 2)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 2)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Dot(par.Serial, in, x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			x, y := benchField(g, 1), benchField(g, 2)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(par.Serial, in, 1e-9, x, y)
			}
		})
	}
}

func BenchmarkApply(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			op := benchOp(g)
			p, w := benchField(g, 1), grid.NewField2D(g)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Apply(par.Serial, in, p, w)
			}
		})
	}
}

func BenchmarkApplyDot(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			op := benchOp(g)
			p, w := benchField(g, 1), grid.NewField2D(g)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 5)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += op.ApplyDot(par.Serial, in, p, w)
			}
			_ = sink
		})
	}
}

func BenchmarkApplyDot2(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			op := benchOp(g)
			p, w := benchField(g, 1), grid.NewField2D(g)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 5)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				pw, ww := op.ApplyDot2(par.Serial, in, p, w)
				sink += pw + ww
			}
			_ = sink
		})
	}
}

func BenchmarkPrecondDot(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			minv, r, z := benchField(g, 1), benchField(g, 2), grid.NewField2D(g)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 4)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += PrecondDot(par.Serial, in, minv, r, z)
			}
			_ = sink
		})
	}
}

func BenchmarkFusedCGDirections(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			minv, r, w := benchField(g, 1), benchField(g, 2), benchField(g, 3)
			p, s := benchField(g, 4), benchField(g, 5)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FusedCGDirections(par.Serial, in, minv, r, w, 0.5, p, s)
			}
		})
	}
}

func BenchmarkFusedCGUpdate(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			minv, pv, sv := benchField(g, 1), benchField(g, 2), benchField(g, 3)
			x, r := benchField(g, 4), benchField(g, 5)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 7)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				gamma, rr := FusedCGUpdate(par.Serial, in, 1e-9, pv, sv, x, r, minv)
				sink += gamma + rr
			}
			_ = sink
		})
	}
}

func BenchmarkFusedPPCGInner(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			g := benchGrid(n)
			minv, w := benchField(g, 1), benchField(g, 2)
			rtemp, sd, z := benchField(g, 3), benchField(g, 4), benchField(g, 5)
			in := g.Interior()
			b.SetBytes(int64(n) * int64(n) * 8 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FusedPPCGInner(par.Serial, in, in, 0.9, 0.1, w, rtemp, minv, sd, z)
			}
		})
	}
}
