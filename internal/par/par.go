// Package par provides the node-level data-parallel execution substrate:
// the role OpenMP worksharing (and a CUDA thread grid) plays in the
// original TeaLeaf. Kernels are expressed as functions over a half-open
// row range; the pool splits the range into contiguous blocks, one per
// worker, mirroring an OpenMP static schedule so each worker touches a
// contiguous, cache-friendly band of the grid.
//
// The pool is explicit rather than implicit (no package-level state) so
// that distributed runs can give each simulated rank its own thread team,
// exactly like `OMP_NUM_THREADS` per MPI rank in the paper's hybrid runs.
package par

import (
	"runtime"
	"sync"
)

// Pool is a team of workers for data-parallel loops. The zero value is not
// usable; construct with NewPool. A Pool with one worker executes inline
// with no synchronisation overhead.
type Pool struct {
	workers int
	// minGrain is the smallest number of iterations worth forking for.
	// Below it the loop runs inline: forking goroutines for a few rows
	// costs more than the rows themselves (the same trade-off as an
	// OpenMP `if` clause).
	minGrain int
}

// DefaultGrain is the default minimum loop length that will be split
// across workers.
const DefaultGrain = 64

// NewPool returns a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, minGrain: DefaultGrain}
}

// Serial is a single-worker pool that always executes inline.
var Serial = &Pool{workers: 1, minGrain: DefaultGrain}

// WithGrain returns a copy of the pool with a different minimum grain.
func (p *Pool) WithGrain(grain int) *Pool {
	if grain < 1 {
		grain = 1
	}
	return &Pool{workers: p.workers, minGrain: grain}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// blocks computes the number of blocks to split [lo,hi) into.
func (p *Pool) blocks(lo, hi int) int {
	n := hi - lo
	if p.workers <= 1 || n < p.minGrain {
		return 1
	}
	w := p.workers
	if w > n {
		w = n
	}
	return w
}

// For runs body over contiguous sub-ranges covering [lo, hi), one per
// worker. body must be safe to call concurrently on disjoint ranges.
// For returns when all workers have finished.
func (p *Pool) For(lo, hi int, body func(lo, hi int)) {
	if hi <= lo {
		return
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		body(lo, hi)
		return
	}
	n := hi - lo
	var wg sync.WaitGroup
	wg.Add(nb)
	for b := 0; b < nb; b++ {
		b0 := lo + b*n/nb
		b1 := lo + (b+1)*n/nb
		go func() {
			defer wg.Done()
			body(b0, b1)
		}()
	}
	wg.Wait()
}

// ForReduce runs body over contiguous sub-ranges covering [lo, hi) and
// returns the sum of the per-range partial results. The reduction order is
// deterministic (block index order) so repeated runs with the same worker
// count reproduce bit-identical sums — important for convergence tests.
func (p *Pool) ForReduce(lo, hi int, body func(lo, hi int) float64) float64 {
	if hi <= lo {
		return 0
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		return body(lo, hi)
	}
	n := hi - lo
	partial := make([]float64, nb)
	var wg sync.WaitGroup
	wg.Add(nb)
	for b := 0; b < nb; b++ {
		b0 := lo + b*n/nb
		b1 := lo + (b+1)*n/nb
		idx := b
		go func() {
			defer wg.Done()
			partial[idx] = body(b0, b1)
		}()
	}
	wg.Wait()
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// ForReduce2 is ForReduce with two simultaneous sum reductions, used by the
// fused-dot-product solver variants (§VII of the paper proposes combining
// multiple dot products into a single communication/reduction step).
func (p *Pool) ForReduce2(lo, hi int, body func(lo, hi int) (float64, float64)) (float64, float64) {
	if hi <= lo {
		return 0, 0
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		return body(lo, hi)
	}
	n := hi - lo
	pa := make([]float64, nb)
	pb := make([]float64, nb)
	var wg sync.WaitGroup
	wg.Add(nb)
	for b := 0; b < nb; b++ {
		b0 := lo + b*n/nb
		b1 := lo + (b+1)*n/nb
		idx := b
		go func() {
			defer wg.Done()
			pa[idx], pb[idx] = body(b0, b1)
		}()
	}
	wg.Wait()
	var sa, sb float64
	for i := range pa {
		sa += pa[i]
		sb += pb[i]
	}
	return sa, sb
}
