// Package par provides the node-level data-parallel execution substrate:
// the role OpenMP worksharing (and a CUDA thread grid) plays in the
// original TeaLeaf. Kernels are expressed as functions over a half-open
// row range; the pool splits the range into contiguous blocks, one per
// worker, mirroring an OpenMP static schedule so each worker touches a
// contiguous, cache-friendly band of the grid.
//
// Pools come in two flavours. NewPool builds a persistent worker team:
// long-lived goroutines parked on per-worker channels, so For/ForReduce
// dispatch with two channel operations per worker instead of a goroutine
// spawn — the same reuse an OpenMP runtime gets from its thread team.
// NewForkPool preserves the original fork-per-call behaviour for
// comparison benchmarks and callers that cannot tolerate resident
// goroutines.
//
// The pool is explicit rather than implicit (no package-level state) so
// that distributed runs can give each simulated rank its own thread team,
// exactly like `OMP_NUM_THREADS` per MPI rank in the paper's hybrid runs.
package par

import (
	"runtime"
	"sync"
)

// Pool is a team of workers for data-parallel loops. The zero value is not
// usable; construct with NewPool or NewForkPool. A Pool with one worker
// executes inline with no synchronisation overhead.
type Pool struct {
	workers int
	// minGrain is the smallest number of iterations worth forking for.
	// Below it the loop runs inline: dispatching a few rows to workers
	// costs more than the rows themselves (the same trade-off as an
	// OpenMP `if` clause).
	minGrain int
	// team is the persistent worker set; nil selects fork-per-call mode.
	team *team
	// hold keeps the garbage-collection backstop from stopping the team
	// while any Pool copy (WithGrain shares the team) is still reachable:
	// the AddCleanup in NewPool is attached to this handle, not to the
	// team itself (which the parked workers always reference).
	hold *teamRef
	// tx, ty, tz are the tile edge lengths the ForTiles/ForTilesReduceN
	// schedulers decompose iteration boxes into, and tiled selects the
	// tiled schedule at all (see WithTiles). An untiled pool degenerates
	// to the legacy one-band-per-worker split along the outermost axis.
	tx, ty, tz int
	tiled      bool
}

// teamRef is the reachability proxy for a shared worker team; see
// Pool.hold.
type teamRef struct{ t *team }

// DefaultGrain is the default minimum loop length that will be split
// across workers.
const DefaultGrain = 64

// NewPool returns a persistent-team pool with the given worker count;
// workers <= 0 selects GOMAXPROCS. The team's goroutines stay parked
// between calls and exit when Close is called or when the pool is
// garbage-collected.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, minGrain: DefaultGrain}
	if workers > 1 {
		p.team = newTeam(workers)
		p.hold = &teamRef{t: p.team}
		// Backstop for pools dropped without Close (per-rank pools in
		// distributed runs): stop the parked workers once every Pool
		// sharing the team has become unreachable. The workers only
		// reference the inner team, so they never keep the handle alive.
		runtime.AddCleanup(p.hold, func(t *team) { t.stop() }, p.team)
	}
	return p
}

// NewForkPool returns a pool with the seed's original behaviour: fresh
// goroutines forked for every parallel region. It exists for A/B
// benchmarks against the persistent team and for short-lived pools where
// resident goroutines are unwanted.
func NewForkPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, minGrain: DefaultGrain}
}

// Serial is a single-worker pool that always executes inline.
var Serial = &Pool{workers: 1, minGrain: DefaultGrain}

// WithGrain returns a copy of the pool with a different minimum grain.
// The copy shares the original's worker team.
func (p *Pool) WithGrain(grain int) *Pool {
	if grain < 1 {
		grain = 1
	}
	return &Pool{workers: p.workers, minGrain: grain, team: p.team, hold: p.hold,
		tx: p.tx, ty: p.ty, tz: p.tz, tiled: p.tiled}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Persistent reports whether the pool runs a resident worker team.
func (p *Pool) Persistent() bool { return p.team != nil }

// Close stops the persistent worker team, if any. The pool remains usable
// afterwards: parallel regions fall back to fork-per-call. Close is
// idempotent and safe to call concurrently.
func (p *Pool) Close() {
	if p.team != nil {
		p.team.stop()
	}
}

// blocks computes the number of blocks to split [lo,hi) into.
func (p *Pool) blocks(lo, hi int) int {
	n := hi - lo
	if p.workers <= 1 || n < p.minGrain {
		return 1
	}
	w := p.workers
	if w > n {
		w = n
	}
	return w
}

// team is a set of long-lived worker goroutines parked on per-worker job
// channels. Dispatch is epoch-style: the caller hands every worker the
// same job descriptor (sharing one WaitGroup as the join barrier), runs
// block 0 itself, and waits. A mutex serialises dispatches so concurrent
// callers (multiple ranks sharing a team) stay correct, if serialised.
type team struct {
	mu       sync.Mutex
	work     []chan job // one channel per helper worker (team size - 1)
	quit     chan struct{}
	stopOnce sync.Once
}

// job is one parallel region: run computes the block for a worker id and
// wg is the join barrier.
type job struct {
	run func(id int)
	wg  *sync.WaitGroup
}

func newTeam(workers int) *team {
	t := &team{
		work: make([]chan job, workers-1),
		quit: make(chan struct{}),
	}
	for i := range t.work {
		t.work[i] = make(chan job, 1)
		go t.worker(i)
	}
	return t
}

func (t *team) worker(i int) {
	for {
		select {
		case j := <-t.work[i]:
			j.run(i + 1) // id 0 is the dispatching caller
			j.wg.Done()
		case <-t.quit:
			return
		}
	}
}

// stop shuts the team down. Taking the mutex serialises it with any
// in-flight dispatch, so workers never exit with a job still queued.
func (t *team) stop() {
	t.stopOnce.Do(func() {
		t.mu.Lock()
		close(t.quit)
		t.mu.Unlock()
	})
}

// stopped reports whether the team has been shut down.
func (t *team) stopped() bool {
	select {
	case <-t.quit:
		return true
	default:
		return false
	}
}

// dispatch runs run(id) for id in [0, nb) across the team (block 0 on the
// caller) and returns true when all blocks are done. nb must be ≤ team
// size. It returns false without running anything if the team has been
// stopped — the check happens under the dispatch mutex, so a concurrent
// stop can never strand a queued job.
func (t *team) dispatch(nb int, run func(id int)) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped() {
		return false
	}
	var wg sync.WaitGroup
	wg.Add(nb - 1)
	j := job{run: run, wg: &wg}
	for i := 0; i < nb-1; i++ {
		t.work[i] <- j
	}
	run(0)
	wg.Wait()
	return true
}

// region runs run(id) for nb blocks using the persistent team when
// available (and alive), forking goroutines otherwise.
func (p *Pool) region(nb int, run func(id int)) {
	if p.team != nil && p.team.dispatch(nb, run) {
		return
	}
	var wg sync.WaitGroup
	wg.Add(nb - 1)
	for b := 1; b < nb; b++ {
		go func(id int) {
			defer wg.Done()
			run(id)
		}(b)
	}
	run(0)
	wg.Wait()
}

// For runs body over contiguous sub-ranges covering [lo, hi), one per
// worker. body must be safe to call concurrently on disjoint ranges.
// For returns when all workers have finished.
//
// Parallel regions on a persistent-team pool are NOT reentrant: body
// must not call For/ForReduce* on the same pool (the team's dispatch
// lock is held for the whole region, so a nested region would deadlock).
// Kernels never nest; use separate pools or NewForkPool if a future
// caller needs nesting.
func (p *Pool) For(lo, hi int, body func(lo, hi int)) {
	if hi <= lo {
		return
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		body(lo, hi)
		return
	}
	n := hi - lo
	p.region(nb, func(id int) {
		body(lo+id*n/nb, lo+(id+1)*n/nb)
	})
}

// ForReduce runs body over contiguous sub-ranges covering [lo, hi) and
// returns the sum of the per-range partial results. The reduction order is
// deterministic (block index order) so repeated runs with the same worker
// count reproduce bit-identical sums — important for convergence tests.
func (p *Pool) ForReduce(lo, hi int, body func(lo, hi int) float64) float64 {
	if hi <= lo {
		return 0
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		return body(lo, hi)
	}
	n := hi - lo
	partial := make([]float64, nb)
	p.region(nb, func(id int) {
		partial[id] = body(lo+id*n/nb, lo+(id+1)*n/nb)
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// ForReduce2 is ForReduce with two simultaneous sum reductions, used by the
// fused-dot-product solver variants (§VII of the paper proposes combining
// multiple dot products into a single communication/reduction step).
func (p *Pool) ForReduce2(lo, hi int, body func(lo, hi int) (float64, float64)) (float64, float64) {
	if hi <= lo {
		return 0, 0
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		return body(lo, hi)
	}
	n := hi - lo
	pa := make([]float64, 2*nb)
	p.region(nb, func(id int) {
		pa[2*id], pa[2*id+1] = body(lo+id*n/nb, lo+(id+1)*n/nb)
	})
	var sa, sb float64
	for i := 0; i < nb; i++ {
		sa += pa[2*i]
		sb += pa[2*i+1]
	}
	return sa, sb
}

// ForReduceN runs body over contiguous sub-ranges covering [lo, hi) with k
// simultaneous sum reductions: body accumulates its k partial sums into
// acc (len k, zeroed). The k sums are returned in block-index order, so
// results are deterministic for a fixed worker count. This is the
// node-level half of the paper's §VII proposal — every dot product a
// fused solver iteration needs is produced by one pass and one barrier.
func (p *Pool) ForReduceN(k, lo, hi int, body func(lo, hi int, acc []float64)) []float64 {
	out := make([]float64, k)
	if hi <= lo || k == 0 {
		return out
	}
	nb := p.blocks(lo, hi)
	if nb == 1 {
		body(lo, hi, out)
		return out
	}
	n := hi - lo
	// Pad each worker's accumulator chunk to a cache line: bodies may
	// read-modify-write acc per element, and adjacent k-sized chunks
	// would otherwise false-share.
	stride := k
	if stride < 8 {
		stride = 8
	}
	partial := make([]float64, nb*stride)
	p.region(nb, func(id int) {
		body(lo+id*n/nb, lo+(id+1)*n/nb, partial[id*stride:id*stride+k:id*stride+k])
	})
	for b := 0; b < nb; b++ {
		for i := 0; i < k; i++ {
			out[i] += partial[b*stride+i]
		}
	}
	return out
}
