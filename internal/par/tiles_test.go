package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForTilesCoversBoxExactlyOnce(t *testing.T) {
	nx, ny, nz := 37, 23, 11
	for _, workers := range []int{1, 2, 4, 7} {
		for _, shape := range [][3]int{{8, 8, 4}, {16, 5, 0}, {0, 7, 3}, {1, 1, 1}, {64, 64, 64}} {
			p := NewPool(workers).WithTiles(shape[0], shape[1], shape[2])
			hits := make([]int32, nx*ny*nz)
			p.ForTiles(Box3D(0, nx, 0, ny, 0, nz), func(tl Tile) {
				for k := tl.Z0; k < tl.Z1; k++ {
					for j := tl.Y0; j < tl.Y1; j++ {
						for i := tl.X0; i < tl.X1; i++ {
							atomic.AddInt32(&hits[(k*ny+j)*nx+i], 1)
						}
					}
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d shape=%v: cell %d hit %d times", workers, shape, i, h)
				}
			}
			p.Close()
		}
	}
}

func TestForTiles2DCoversOffsetBox(t *testing.T) {
	// 2D boxes with non-zero origins (interior bounds start at 0 but
	// matrix-powers boxes go negative).
	p := NewPool(4).WithTiles(5, 3, 0)
	defer p.Close()
	x0, x1, y0, y1 := -2, 31, -4, 17
	nx, ny := x1-x0, y1-y0
	hits := make([]int32, nx*ny)
	p.ForTiles(Box2D(x0, x1, y0, y1), func(tl Tile) {
		if tl.Z0 != 0 || tl.Z1 != 1 {
			t.Errorf("2D tile has Z bounds [%d,%d)", tl.Z0, tl.Z1)
		}
		for j := tl.Y0; j < tl.Y1; j++ {
			for i := tl.X0; i < tl.X1; i++ {
				atomic.AddInt32(&hits[(j-y0)*nx+(i-x0)], 1)
			}
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("cell %d hit %d times", i, h)
		}
	}
}

func TestForTilesEmptyBox(t *testing.T) {
	p := NewPool(4).WithTiles(8, 8, 0)
	defer p.Close()
	called := false
	p.ForTiles(Box2D(5, 5, 0, 10), func(Tile) { called = true })
	p.ForTiles(Box3D(0, 4, 3, 3, 0, 4), func(Tile) { called = true })
	if called {
		t.Error("body must not run on an empty box")
	}
	got := p.ForTilesReduceN(2, Box2D(7, 2, 0, 5), func(Tile, []float64) {})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("empty box reduced to %v", got)
	}
}

// tileHarmonic is a reduction whose value depends on association order,
// so bit-equality across worker counts actually tests the fold order.
func tileHarmonic(nx int) func(tl Tile, acc []float64) {
	return func(tl Tile, acc []float64) {
		for k := tl.Z0; k < tl.Z1; k++ {
			for j := tl.Y0; j < tl.Y1; j++ {
				for i := tl.X0; i < tl.X1; i++ {
					cell := float64((k*997+j)*nx + i + 1)
					acc[0] += 1.0 / cell
					acc[1] += cell / (cell + 1)
				}
			}
		}
	}
}

func TestForTilesReduceNBitIdenticalAcrossWorkers(t *testing.T) {
	// The tiled contract: for a FIXED tile shape the reduction is
	// bit-identical for every worker count — per-tile partials folded in
	// global tile order, never worker order.
	for _, shape := range [][3]int{{8, 8, 4}, {16, 3, 2}, {0, 5, 0}, {7, 7, 7}} {
		var ref []float64
		for _, workers := range []int{1, 2, 4, 7} {
			p := NewPool(workers).WithTiles(shape[0], shape[1], shape[2])
			got := p.ForTilesReduceN(2, Box3D(0, 33, 0, 19, 0, 9), tileHarmonic(33))
			p.Close()
			if ref == nil {
				ref = got
				continue
			}
			if got[0] != ref[0] || got[1] != ref[1] {
				t.Fatalf("shape=%v workers=%d: %v != serial %v", shape, workers, got, ref)
			}
		}
	}
}

func TestForTilesReduceNUntiledMatchesLegacy(t *testing.T) {
	// On an untiled pool the tile API must reproduce ForReduceN's bands
	// and fold bit-for-bit: converting a kernel changes nothing until
	// tiling is switched on.
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers).WithGrain(1)
		nx, ny := 41, 29
		legacy := p.ForReduceN(2, 0, ny, func(lo, hi int, acc []float64) {
			tileHarmonic(nx)(Tile{X0: 0, X1: nx, Y0: lo, Y1: hi, Z0: 0, Z1: 1}, acc)
		})
		viaTiles := p.ForTilesReduceN(2, Box2D(0, nx, 0, ny), tileHarmonic(nx))
		p.Close()
		if legacy[0] != viaTiles[0] || legacy[1] != viaTiles[1] {
			t.Fatalf("workers=%d: untiled tile path %v != legacy %v", workers, viaTiles, legacy)
		}
	}
}

func TestForTilesReduceNSerialTiledMatchesParallelTiled(t *testing.T) {
	// quick-check over random box extents and tile shapes.
	f := func(sx, sy, tu, tv uint8) bool {
		nx, ny := int(sx%60)+1, int(sy%60)+1
		tx, ty := int(tu%17), int(tv%17) // 0 means full extent
		serial := NewPool(1).WithTiles(tx, ty, 0)
		parallel := NewPool(5).WithTiles(tx, ty, 0)
		defer parallel.Close()
		a := serial.ForTilesReduceN(2, Box2D(0, nx, 0, ny), tileHarmonic(nx))
		b := parallel.ForTilesReduceN(2, Box2D(0, nx, 0, ny), tileHarmonic(nx))
		return a[0] == b[0] && a[1] == b[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithTilesSharesTeamAndUntiledRoundTrip(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	q := p.WithTiles(0, 16, 0)
	if !q.Persistent() {
		t.Fatal("WithTiles must share the persistent team")
	}
	if !q.Tiled() {
		t.Fatal("WithTiles must enable the tiled schedule")
	}
	if tx, ty, tz := q.TileShape(); tx != 0 || ty != 16 || tz != 0 {
		t.Fatalf("TileShape = (%d,%d,%d), want (0,16,0)", tx, ty, tz)
	}
	if p.Tiled() {
		t.Fatal("WithTiles must not mutate the receiver")
	}
	u := q.Untiled()
	if u.Tiled() {
		t.Fatal("Untiled must disable the tiled schedule")
	}
	if !u.Persistent() {
		t.Fatal("Untiled must keep the worker team")
	}
	// WithGrain on a tiled pool keeps the tiling.
	if !q.WithGrain(1).Tiled() {
		t.Fatal("WithGrain must preserve the tile configuration")
	}
}

func TestForTilesUntiledMatchesFor(t *testing.T) {
	// Untiled ForTiles bands exactly like For along the outer axis.
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers).WithGrain(1)
		ny := 57
		var forBands, tileBands [][2]int
		bandsCh := make(chan [2]int, ny)
		p.For(0, ny, func(lo, hi int) { bandsCh <- [2]int{lo, hi} })
		close(bandsCh)
		for b := range bandsCh {
			forBands = append(forBands, b)
		}
		bandsCh2 := make(chan [2]int, ny)
		p.ForTiles(Box2D(0, 13, 0, ny), func(tl Tile) { bandsCh2 <- [2]int{tl.Y0, tl.Y1} })
		close(bandsCh2)
		for b := range bandsCh2 {
			tileBands = append(tileBands, b)
		}
		p.Close()
		if len(forBands) != len(tileBands) {
			t.Fatalf("workers=%d: %d For bands vs %d tile bands", workers, len(forBands), len(tileBands))
		}
		// Compare as sets (concurrent send order is arbitrary).
		seen := map[[2]int]int{}
		for _, b := range forBands {
			seen[b]++
		}
		for _, b := range tileBands {
			seen[b]--
		}
		for b, c := range seen {
			if c != 0 {
				t.Fatalf("workers=%d: band %v mismatch (count %d)", workers, b, c)
			}
		}
	}
}
