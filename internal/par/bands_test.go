package par

import (
	"testing"
)

func TestChainBandsPartitionTilesAndCells(t *testing.T) {
	// Bands must partition the global tile range [0,nt) and the chain
	// axis into contiguous, non-overlapping pieces, with the edge bands'
	// cell ranges pushed out past any grid extent.
	cases := []struct {
		shape     [3]int
		box       Box
		bandCells int
	}{
		{[3]int{0, 8, 0}, Box2D(0, 100, 0, 57), 16},
		{[3]int{16, 3, 0}, Box2D(-2, 31, -4, 17), 7},
		{[3]int{8, 8, 4}, Box3D(0, 33, 0, 19, 0, 9), 5},
		{[3]int{0, 0, 1}, Box3D(0, 10, 0, 10, 0, 23), 1},
		{[3]int{0, 8, 0}, Box2D(0, 100, 0, 57), 0}, // single spanning band
	}
	for _, c := range cases {
		p := NewPool(1).WithTiles(c.shape[0], c.shape[1], c.shape[2])
		bands := p.ChainBands(c.box, c.bandCells)
		if len(bands) == 0 {
			t.Fatalf("shape=%v: no bands", c.shape)
		}
		nt, _, _, _ := p.tileCounts(c.box)
		if bands[0].T0 != 0 || bands[len(bands)-1].T1 != nt {
			t.Fatalf("shape=%v: bands cover tiles [%d,%d), want [0,%d)",
				c.shape, bands[0].T0, bands[len(bands)-1].T1, nt)
		}
		if bands[0].Lo != -fullExtent || bands[len(bands)-1].Hi != fullExtent {
			t.Fatalf("shape=%v: edge bands must extend past the grid: Lo=%d Hi=%d",
				c.shape, bands[0].Lo, bands[len(bands)-1].Hi)
		}
		for i := 1; i < len(bands); i++ {
			if bands[i].T0 != bands[i-1].T1 {
				t.Fatalf("shape=%v: tile gap between bands %d and %d", c.shape, i-1, i)
			}
			if bands[i].Lo != bands[i-1].Hi {
				t.Fatalf("shape=%v: cell gap between bands %d and %d (%d vs %d)",
					c.shape, i-1, i, bands[i-1].Hi, bands[i].Lo)
			}
		}
		if c.bandCells <= 0 && len(bands) != 1 {
			t.Fatalf("bandCells=0 must give one spanning band, got %d", len(bands))
		}
	}
}

func TestChainBandsNilOnUntiledPool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if bands := p.ChainBands(Box2D(0, 10, 0, 10), 4); bands != nil {
		t.Fatalf("untiled pool returned bands %v", bands)
	}
}

func TestChainAccumFoldMatchesForTilesReduceN(t *testing.T) {
	// The load-bearing invariant: running the SAME body once per tile
	// through ForTilesChunk over any band decomposition and folding must
	// reproduce ForTilesReduceN's bits for every worker count.
	box := Box3D(0, 33, 0, 19, 0, 9)
	for _, shape := range [][3]int{{8, 8, 4}, {16, 3, 2}, {0, 5, 3}} {
		ref := NewPool(1).WithTiles(shape[0], shape[1], shape[2]).
			ForTilesReduceN(2, box, tileHarmonic(33))
		for _, workers := range []int{1, 2, 4, 7} {
			for _, bandCells := range []int{1, 3, 8, 100} {
				p := NewPool(workers).WithTiles(shape[0], shape[1], shape[2])
				acc := p.NewChainAccum(2, box)
				for _, b := range p.ChainBands(box, bandCells) {
					p.ForTilesChunk(acc, b.T0, b.T1, tileHarmonic(33))
				}
				got := acc.Fold()
				// A second cycle after Reset must reproduce the same bits.
				acc.Reset()
				for _, b := range p.ChainBands(box, bandCells) {
					p.ForTilesChunk(acc, b.T0, b.T1, tileHarmonic(33))
				}
				again := acc.Fold()
				p.Close()
				if got[0] != ref[0] || got[1] != ref[1] {
					t.Fatalf("shape=%v workers=%d bandCells=%d: chained %v != reduceN %v",
						shape, workers, bandCells, got, ref)
				}
				if again[0] != got[0] || again[1] != got[1] {
					t.Fatalf("shape=%v: Reset cycle drifted: %v != %v", shape, again, got)
				}
			}
		}
	}
}

func TestForTilesChunkRangeChecks(t *testing.T) {
	p := NewPool(1).WithTiles(4, 4, 0)
	acc := p.NewChainAccum(1, Box2D(0, 8, 0, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range chunk must panic")
		}
	}()
	p.ForTilesChunk(acc, 0, acc.nt+1, func(Tile, []float64) {})
}
