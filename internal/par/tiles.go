package par

// This file is the cache-aware tile scheduler (PR 8): ForTiles and
// ForTilesReduceN decompose a 2D/3D iteration box into cache-sized
// tx×ty(×tz) tiles, hand each worker a contiguous run of tiles (the
// OpenMP-static analogue of the legacy band split), and fold per-tile
// reduction partials in a fixed global tile order that does NOT depend
// on the worker count. The fixed fold order is the load-bearing part:
// tiled reductions are bit-identical across pool sizes, which is what
// lets the solver golden tests and tealint's determinism contracts
// survive tiling.
//
// On an untiled pool (WithTiles never called) both entry points
// degenerate to exactly the legacy For/ForReduceN schedule — one
// contiguous band per worker along the outermost axis, partials folded
// in band order — so converting a kernel to the tile API changes
// nothing, bit for bit, until tiling is switched on.

// Box is the iteration domain handed to the tile scheduler: a half-open
// 2D or 3D index box. Construct with Box2D or Box3D — the constructor
// records the dimensionality, which selects the outermost axis (Y in
// 2D, Z in 3D) for the untiled legacy split.
type Box struct {
	X0, X1, Y0, Y1, Z0, Z1 int
	dims                   int
}

// Box2D returns a 2D iteration box over [x0,x1)×[y0,y1).
func Box2D(x0, x1, y0, y1 int) Box {
	return Box{X0: x0, X1: x1, Y0: y0, Y1: y1, Z0: 0, Z1: 1, dims: 2}
}

// Box3D returns a 3D iteration box over [x0,x1)×[y0,y1)×[z0,z1).
func Box3D(x0, x1, y0, y1, z0, z1 int) Box {
	return Box{X0: x0, X1: x1, Y0: y0, Y1: y1, Z0: z0, Z1: z1, dims: 3}
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool { return b.X1 <= b.X0 || b.Y1 <= b.Y0 || b.Z1 <= b.Z0 }

// Tile is one tile of a Box: the sub-box a scheduler body iterates.
// For 2D boxes Z0/Z1 are always 0/1.
type Tile struct {
	X0, X1, Y0, Y1, Z0, Z1 int
}

// fullExtent is the tile-edge sentinel meaning "never split this axis".
// Large enough to exceed any grid extent, small enough that
// origin+fullExtent cannot overflow int.
const fullExtent = 1 << 30

// WithTiles returns a copy of the pool (sharing its worker team) with
// the tiled schedule enabled and the given tile edge lengths. Edges < 1
// mean "do not split that axis" — WithTiles(0, 32, 0) tiles Y in bands
// of 32 rows and leaves X and Z whole, matching the measured behaviour
// that full-row X runs keep the hardware prefetchers streaming.
func (p *Pool) WithTiles(tx, ty, tz int) *Pool {
	if tx < 1 {
		tx = fullExtent
	}
	if ty < 1 {
		ty = fullExtent
	}
	if tz < 1 {
		tz = fullExtent
	}
	return &Pool{workers: p.workers, minGrain: p.minGrain, team: p.team, hold: p.hold,
		tx: tx, ty: ty, tz: tz, tiled: true}
}

// Untiled returns a copy of the pool (sharing its worker team) with the
// tiled schedule disabled — the legacy band split.
func (p *Pool) Untiled() *Pool {
	return &Pool{workers: p.workers, minGrain: p.minGrain, team: p.team, hold: p.hold}
}

// Tiled reports whether the pool runs the tiled schedule.
func (p *Pool) Tiled() bool { return p.tiled }

// TileShape returns the tile edge lengths (meaningful only when Tiled).
// Unsplit axes report the fullExtent sentinel clamped to 0 for clarity.
func (p *Pool) TileShape() (tx, ty, tz int) {
	tx, ty, tz = p.tx, p.ty, p.tz
	if tx >= fullExtent {
		tx = 0
	}
	if ty >= fullExtent {
		ty = 0
	}
	if tz >= fullExtent {
		tz = 0
	}
	return tx, ty, tz
}

// tileCounts returns the tile grid shape for box b: total tiles and the
// per-axis tile counts.
func (p *Pool) tileCounts(b Box) (nt, ntx, nty, ntz int) {
	ntx = (b.X1 - b.X0 + p.tx - 1) / p.tx
	nty = (b.Y1 - b.Y0 + p.ty - 1) / p.ty
	ntz = (b.Z1 - b.Z0 + p.tz - 1) / p.tz
	return ntx * nty * ntz, ntx, nty, ntz
}

// tileAt returns tile t of box b in the fixed global order: X fastest,
// then Y, then Z — so consecutive tile indices touch adjacent memory
// and a worker's contiguous tile run walks the grid like a band.
func (p *Pool) tileAt(b Box, t, ntx, nty int) Tile {
	ix := t % ntx
	iy := (t / ntx) % nty
	iz := t / (ntx * nty)
	x0 := b.X0 + ix*p.tx
	y0 := b.Y0 + iy*p.ty
	z0 := b.Z0 + iz*p.tz
	return Tile{
		X0: x0, X1: min(x0+p.tx, b.X1),
		Y0: y0, Y1: min(y0+p.ty, b.Y1),
		Z0: z0, Z1: min(z0+p.tz, b.Z1),
	}
}

// ForTiles runs body once per tile of b, tiles assigned to workers in
// contiguous runs. body must be safe to call concurrently on distinct
// tiles. On an untiled pool this is exactly For over the outermost axis
// with full-extent tiles — the legacy schedule. The reentrancy rules of
// For apply.
func (p *Pool) ForTiles(b Box, body func(t Tile)) {
	if b.Empty() {
		return
	}
	if !p.tiled {
		if b.dims == 3 {
			p.For(b.Z0, b.Z1, func(lo, hi int) {
				body(Tile{X0: b.X0, X1: b.X1, Y0: b.Y0, Y1: b.Y1, Z0: lo, Z1: hi})
			})
		} else {
			p.For(b.Y0, b.Y1, func(lo, hi int) {
				body(Tile{X0: b.X0, X1: b.X1, Y0: lo, Y1: hi, Z0: b.Z0, Z1: b.Z1})
			})
		}
		return
	}
	nt, ntx, nty, _ := p.tileCounts(b)
	nb := p.workers
	if nb > nt {
		nb = nt
	}
	if nb <= 1 {
		for t := 0; t < nt; t++ {
			body(p.tileAt(b, t, ntx, nty))
		}
		return
	}
	p.region(nb, func(id int) {
		for t := id * nt / nb; t < (id+1)*nt/nb; t++ {
			body(p.tileAt(b, t, ntx, nty))
		}
	})
}

// ForTilesReduceN runs body once per tile of b with k simultaneous sum
// reductions: body accumulates its tile's contribution into acc (len k,
// zeroed per tile). The per-tile partials are folded in ascending global
// tile order — NOT worker order — so for a fixed tile shape the result
// is bit-identical for every worker count, including serial. On an
// untiled pool this degenerates to the legacy ForReduceN schedule and
// fold (one band per worker, folded in band order), so converted
// kernels reproduce their historical sums exactly until tiling is
// enabled.
func (p *Pool) ForTilesReduceN(k int, b Box, body func(t Tile, acc []float64)) []float64 {
	out := make([]float64, k)
	if b.Empty() || k == 0 {
		return out
	}
	if !p.tiled {
		lo, hi := b.Y0, b.Y1
		band := func(lo, hi int) Tile {
			return Tile{X0: b.X0, X1: b.X1, Y0: lo, Y1: hi, Z0: b.Z0, Z1: b.Z1}
		}
		if b.dims == 3 {
			lo, hi = b.Z0, b.Z1
			band = func(lo, hi int) Tile {
				return Tile{X0: b.X0, X1: b.X1, Y0: b.Y0, Y1: b.Y1, Z0: lo, Z1: hi}
			}
		}
		nb := p.blocks(lo, hi)
		if nb == 1 {
			body(band(lo, hi), out)
			return out
		}
		n := hi - lo
		stride := k
		if stride < 8 {
			stride = 8
		}
		partial := make([]float64, nb*stride)
		p.region(nb, func(id int) {
			body(band(lo+id*n/nb, lo+(id+1)*n/nb), partial[id*stride:id*stride+k:id*stride+k])
		})
		for bi := 0; bi < nb; bi++ {
			for i := 0; i < k; i++ {
				out[i] += partial[bi*stride+i]
			}
		}
		return out
	}
	nt, ntx, nty, _ := p.tileCounts(b)
	// One padded accumulator chunk per TILE (not per worker): the fold
	// below walks chunks in tile order, which is what makes the sum
	// independent of how tiles were assigned to workers. The serial path
	// uses the same per-tile buffer + fold so that body implementations
	// that accumulate incrementally into acc still produce the exact
	// bits of the parallel fold.
	stride := k
	if stride < 8 {
		stride = 8
	}
	partial := make([]float64, nt*stride)
	run := func(t int) {
		body(p.tileAt(b, t, ntx, nty), partial[t*stride:t*stride+k:t*stride+k])
	}
	nb := p.workers
	if nb > nt {
		nb = nt
	}
	if nb <= 1 {
		for t := 0; t < nt; t++ {
			run(t)
		}
	} else {
		p.region(nb, func(id int) {
			for t := id * nt / nb; t < (id+1)*nt/nb; t++ {
				run(t)
			}
		})
	}
	for t := 0; t < nt; t++ {
		for i := 0; i < k; i++ {
			out[i] += partial[t*stride+i]
		}
	}
	return out
}
