package par

// This file is the temporal-blocking band scheduler (PR 10): it cuts a
// tiled iteration box into LLC-sized bands of whole tile rows along the
// outermost axis (Y in 2D, Z in 3D) so a solve cycle can chain several
// sweeps band-by-band — each band streams through cache once per cycle
// instead of once per sweep — and it provides the per-tile partial
// accumulator (ChainAccum + ForTilesChunk) whose end-of-cycle Fold
// reproduces ForTilesReduceN's fixed tile-order fold bit for bit. The
// invariant the solver leans on: if every tile of the box receives
// exactly one body call per cycle (in any order, from any worker), Fold
// returns the exact bits ForTilesReduceN would have for the same body
// over the same box.
//
// Bands only exist on tiled pools: the untiled legacy reduction folds
// per-worker partials, which is worker-count-dependent under any
// re-decomposition, so ChainBands returns nil there and callers fall
// back to the unchained path.

// ChainBand is one band of a chained sweep: the contiguous global tile
// range [T0,T1) of the box it was cut from, plus the band's cell range
// [Lo,Hi) along the chain axis (Y in 2D, Z in 3D) for clipping ring and
// extension bounds to the band. The first band's Lo and the last band's
// Hi are pushed out beyond any grid extent, so extension rows outside
// the box attach to the nearest edge band.
type ChainBand struct {
	T0, T1 int // global tile index range within the chained box
	Lo, Hi int // chain-axis cell range the band owns
}

// ChainBands cuts box b into bands of whole tile rows along the
// outermost axis, each covering about bandCells cells of that axis
// (rounded up to whole tile rows, minimum one row). It returns nil on
// an untiled pool — chained reductions require the fixed tile-order
// fold — and a single spanning band when bandCells <= 0 or the box is
// one band tall. Because the global tile order is X-fastest, each
// band's tiles form one contiguous index range.
func (p *Pool) ChainBands(b Box, bandCells int) []ChainBand {
	if !p.tiled || b.Empty() {
		return nil
	}
	_, ntx, nty, ntz := p.tileCounts(b)
	// Tile rows along the chain axis, tiles per row, row height, origin.
	rows, perRow, edge, origin, extent := nty, ntx, p.ty, b.Y0, b.Y1
	if b.dims == 3 {
		rows, perRow, edge, origin, extent = ntz, ntx*nty, p.tz, b.Z0, b.Z1
	}
	rowsPerBand := rows
	if bandCells > 0 {
		rowsPerBand = (bandCells + edge - 1) / edge
		if rowsPerBand < 1 {
			rowsPerBand = 1
		}
	}
	var bands []ChainBand
	for r0 := 0; r0 < rows; r0 += rowsPerBand {
		r1 := min(r0+rowsPerBand, rows)
		lo, hi := origin+r0*edge, min(origin+r1*edge, extent)
		if r0 == 0 {
			lo = -fullExtent
		}
		if r1 == rows {
			hi = fullExtent
		}
		bands = append(bands, ChainBand{T0: r0 * perRow, T1: r1 * perRow, Lo: lo, Hi: hi})
	}
	return bands
}

// ChainAccum is the per-tile reduction table of one chained sweep over a
// fixed box: ForTilesChunk fills the partials of a band's tile range,
// Fold combines every tile's partial in ascending global tile order —
// exactly the ForTilesReduceN fold, so a chained sweep whose body ran
// once per tile produces ForTilesReduceN's bits regardless of band
// shape, band count, or worker count.
type ChainAccum struct {
	box      Box
	k        int
	stride   int
	nt       int
	ntx, nty int
	partial  []float64
}

// NewChainAccum builds a k-wide per-tile accumulator over box b. The
// pool must be tiled (ChainBands returned bands for the same box).
func (p *Pool) NewChainAccum(k int, b Box) *ChainAccum {
	if !p.tiled {
		panic("par: NewChainAccum requires a tiled pool")
	}
	nt, ntx, nty, _ := p.tileCounts(b)
	stride := k
	if stride < 8 {
		stride = 8
	}
	return &ChainAccum{
		box: b, k: k, stride: stride, nt: nt, ntx: ntx, nty: nty,
		partial: make([]float64, nt*stride),
	}
}

// Reset zeroes the partials for the next chained sweep.
func (a *ChainAccum) Reset() {
	for i := range a.partial {
		a.partial[i] = 0
	}
}

// Fold combines the per-tile partials in ascending global tile order and
// returns the k sums — bit-identical to ForTilesReduceN's fold over the
// same box when every tile's body ran exactly once.
func (a *ChainAccum) Fold() []float64 {
	out := make([]float64, a.k)
	for t := 0; t < a.nt; t++ {
		for i := 0; i < a.k; i++ {
			out[i] += a.partial[t*a.stride+i]
		}
	}
	return out
}

// ForTilesChunk runs body once per tile of the accumulator's tile range
// [t0,t1) (a ChainBand's T0/T1), handing each call the tile's private
// partial slice (len k, as ForTilesReduceN's body sees it). Tiles are
// assigned to workers in contiguous runs. The reentrancy rules of For
// apply; bodies must be safe to run concurrently on distinct tiles.
func (p *Pool) ForTilesChunk(acc *ChainAccum, t0, t1 int, body func(t Tile, acc []float64)) {
	if t0 < 0 || t1 > acc.nt || t0 > t1 {
		panic("par: ForTilesChunk tile range outside the accumulator's box")
	}
	if t0 == t1 {
		return
	}
	run := func(t int) {
		body(p.tileAt(acc.box, t, acc.ntx, acc.nty),
			acc.partial[t*acc.stride:t*acc.stride+acc.k:t*acc.stride+acc.k])
	}
	n := t1 - t0
	nb := p.workers
	if nb > n {
		nb = n
	}
	if nb <= 1 {
		for t := t0; t < t1; t++ {
			run(t)
		}
		return
	}
	p.region(nb, func(id int) {
		for t := t0 + id*n/nb; t < t0+(id+1)*n/nb; t++ {
			run(t)
		}
	})
}
