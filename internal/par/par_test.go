package par

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers).WithGrain(1)
		n := 1000
		hits := make([]int32, n)
		p.For(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(5, 5, func(lo, hi int) { called = true })
	p.For(8, 3, func(lo, hi int) { called = true })
	if called {
		t.Error("body must not run on empty range")
	}
}

func TestForSmallRangeRunsInline(t *testing.T) {
	p := NewPool(8) // default grain 64
	calls := 0
	p.For(0, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small range split into %d calls, want 1", calls)
	}
}

func TestForReduceSum(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers).WithGrain(1)
		n := 10000
		got := p.ForReduce(0, n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		want := float64(n*(n-1)) / 2
		if got != want {
			t.Errorf("workers=%d: sum = %v, want %v", workers, got, want)
		}
	}
}

func TestForReduceDeterministic(t *testing.T) {
	// Same worker count => bit-identical result, even for a sum whose
	// value depends on association order.
	p := NewPool(4).WithGrain(1)
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	a := p.ForReduce(0, 100000, body)
	for i := 0; i < 5; i++ {
		if b := p.ForReduce(0, 100000, body); b != a {
			t.Fatalf("run %d differs: %v vs %v", i, b, a)
		}
	}
}

func TestForReduce2(t *testing.T) {
	p := NewPool(4).WithGrain(1)
	n := 5000
	sa, sb := p.ForReduce2(0, n, func(lo, hi int) (float64, float64) {
		var a, b float64
		for i := lo; i < hi; i++ {
			a += float64(i)
			b += 2 * float64(i)
		}
		return a, b
	})
	want := float64(n*(n-1)) / 2
	if sa != want || sb != 2*want {
		t.Errorf("ForReduce2 = (%v,%v), want (%v,%v)", sa, sb, want, 2*want)
	}
	// Empty range.
	sa, sb = p.ForReduce2(3, 3, func(lo, hi int) (float64, float64) { return 1, 1 })
	if sa != 0 || sb != 0 {
		t.Error("empty range must reduce to zero")
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("NewPool(0) must pick at least one worker")
	}
	if NewPool(-3).Workers() < 1 {
		t.Error("NewPool(negative) must pick at least one worker")
	}
	if Serial.Workers() != 1 {
		t.Error("Serial must have one worker")
	}
	if NewPool(4).WithGrain(0).minGrain != 1 {
		t.Error("WithGrain must clamp to 1")
	}
}

func TestForReduceMatchesSerialQuick(t *testing.T) {
	serial := NewPool(1)
	parallel := NewPool(5).WithGrain(1)
	f := func(nu uint16) bool {
		n := int(nu % 2048)
		body := func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i * i)
			}
			return s
		}
		a := serial.ForReduce(0, n, body)
		b := parallel.ForReduce(0, n, body)
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentTeamReuse(t *testing.T) {
	p := NewPool(4).WithGrain(1)
	defer p.Close()
	if !p.Persistent() {
		t.Fatal("NewPool(4) must build a persistent team")
	}
	// Many back-to-back regions through the same parked workers.
	n := 512
	for round := 0; round < 200; round++ {
		var total int64
		p.For(0, n, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("round %d covered %d of %d", round, total, n)
		}
	}
}

func TestForkAndPersistentAgree(t *testing.T) {
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	for _, workers := range []int{1, 2, 4, 7} {
		pp := NewPool(workers).WithGrain(1)
		fp := NewForkPool(workers).WithGrain(1)
		a := pp.ForReduce(0, 50000, body)
		b := fp.ForReduce(0, 50000, body)
		// Identical block split => bit-identical partial sums.
		if a != b {
			t.Errorf("workers=%d: persistent %v != fork %v", workers, a, b)
		}
		pp.Close()
	}
}

func TestCloseFallsBackToFork(t *testing.T) {
	p := NewPool(4).WithGrain(1)
	p.Close()
	p.Close() // idempotent
	var total int64
	p.For(0, 1000, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 1000 {
		t.Fatalf("closed pool covered %d of 1000", total)
	}
}

func TestForReduceN(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers).WithGrain(1)
		n := 4001 // odd on purpose
		got := p.ForReduceN(3, 0, n, func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				acc[0] += float64(i)
				acc[1] += 2 * float64(i)
				acc[2]++
			}
		})
		want0 := float64(n*(n-1)) / 2
		if got[0] != want0 || got[1] != 2*want0 || got[2] != float64(n) {
			t.Errorf("workers=%d: ForReduceN = %v, want [%v %v %v]",
				workers, got, want0, 2*want0, float64(n))
		}
		p.Close()
	}
}

func TestForReduceNEdgeCases(t *testing.T) {
	p := NewPool(4).WithGrain(1)
	defer p.Close()
	if got := p.ForReduceN(2, 5, 5, func(lo, hi int, acc []float64) { acc[0] = 99 }); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty range: got %v", got)
	}
	if got := p.ForReduceN(0, 0, 100, func(lo, hi int, acc []float64) {}); len(got) != 0 {
		t.Errorf("k=0: got %v", got)
	}
}

func TestForReduceNDeterministic(t *testing.T) {
	p := NewPool(7).WithGrain(1)
	defer p.Close()
	body := func(lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			acc[0] += 1.0 / float64(i+1)
			acc[1] += 1.0 / float64(i*i+1)
		}
	}
	a := p.ForReduceN(2, 0, 100000, body)
	for i := 0; i < 5; i++ {
		b := p.ForReduceN(2, 0, 100000, body)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("run %d differs: %v vs %v", i, b, a)
		}
	}
}

func TestConcurrentDispatch(t *testing.T) {
	// Multiple goroutines (simulated ranks) sharing one team: dispatches
	// serialise but must stay correct.
	p := NewPool(4).WithGrain(1)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				got := p.ForReduce(0, 1000, func(lo, hi int) float64 {
					var s float64
					for i := lo; i < hi; i++ {
						s += float64(i)
					}
					return s
				})
				if got != 499500 {
					errs <- "bad sum"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestWithGrainSharesTeam(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	q := p.WithGrain(1)
	if !q.Persistent() {
		t.Fatal("WithGrain must share the persistent team")
	}
	var total int64
	q.For(0, 100, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 100 {
		t.Fatalf("covered %d of 100", total)
	}
}

func TestWithGrainCopySurvivesGC(t *testing.T) {
	// Regression: only a WithGrain copy of a pool stays reachable. The
	// GC backstop must not shut the shared team down underneath it, and
	// a racing shutdown must never strand a dispatched job.
	q := NewPool(4).WithGrain(1)
	defer q.Close()
	for round := 0; round < 50; round++ {
		runtime.GC()
		got := q.ForReduce(0, 1000, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if got != 499500 {
			t.Fatalf("round %d: sum = %v", round, got)
		}
	}
}

func TestCloseDuringConcurrentUse(t *testing.T) {
	// Closing a pool while other goroutines dispatch must not deadlock:
	// dispatches either run on the team or fall back to forking.
	p := NewPool(4).WithGrain(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				var total int64
				p.For(0, 500, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
				if total != 500 {
					t.Errorf("covered %d of 500", total)
					return
				}
			}
		}()
	}
	p.Close()
	wg.Wait()
}
