package par

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers).WithGrain(1)
		n := 1000
		hits := make([]int32, n)
		p.For(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(5, 5, func(lo, hi int) { called = true })
	p.For(8, 3, func(lo, hi int) { called = true })
	if called {
		t.Error("body must not run on empty range")
	}
}

func TestForSmallRangeRunsInline(t *testing.T) {
	p := NewPool(8) // default grain 64
	calls := 0
	p.For(0, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small range split into %d calls, want 1", calls)
	}
}

func TestForReduceSum(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers).WithGrain(1)
		n := 10000
		got := p.ForReduce(0, n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		want := float64(n*(n-1)) / 2
		if got != want {
			t.Errorf("workers=%d: sum = %v, want %v", workers, got, want)
		}
	}
}

func TestForReduceDeterministic(t *testing.T) {
	// Same worker count => bit-identical result, even for a sum whose
	// value depends on association order.
	p := NewPool(4).WithGrain(1)
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	a := p.ForReduce(0, 100000, body)
	for i := 0; i < 5; i++ {
		if b := p.ForReduce(0, 100000, body); b != a {
			t.Fatalf("run %d differs: %v vs %v", i, b, a)
		}
	}
}

func TestForReduce2(t *testing.T) {
	p := NewPool(4).WithGrain(1)
	n := 5000
	sa, sb := p.ForReduce2(0, n, func(lo, hi int) (float64, float64) {
		var a, b float64
		for i := lo; i < hi; i++ {
			a += float64(i)
			b += 2 * float64(i)
		}
		return a, b
	})
	want := float64(n*(n-1)) / 2
	if sa != want || sb != 2*want {
		t.Errorf("ForReduce2 = (%v,%v), want (%v,%v)", sa, sb, want, 2*want)
	}
	// Empty range.
	sa, sb = p.ForReduce2(3, 3, func(lo, hi int) (float64, float64) { return 1, 1 })
	if sa != 0 || sb != 0 {
		t.Error("empty range must reduce to zero")
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("NewPool(0) must pick at least one worker")
	}
	if NewPool(-3).Workers() < 1 {
		t.Error("NewPool(negative) must pick at least one worker")
	}
	if Serial.Workers() != 1 {
		t.Error("Serial must have one worker")
	}
	if NewPool(4).WithGrain(0).minGrain != 1 {
		t.Error("WithGrain must clamp to 1")
	}
}

func TestForReduceMatchesSerialQuick(t *testing.T) {
	serial := NewPool(1)
	parallel := NewPool(5).WithGrain(1)
	f := func(nu uint16) bool {
		n := int(nu % 2048)
		body := func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i * i)
			}
			return s
		}
		a := serial.ForReduce(0, n, body)
		b := parallel.ForReduce(0, n, body)
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
