// Package eigen estimates the extremal eigenvalues of the system matrix,
// which the Chebyshev machinery of CPPCG needs a priori (§III-D of the
// paper: "the method is sensitive to the provision of accurate estimates of
// the extreme eigenvalues... we perform several iterations of the regular
// CG method" to obtain them).
//
// CG is mathematically a Lanczos process: the step scalars (αᵢ, βᵢ) define
// a symmetric tridiagonal matrix whose eigenvalues (Ritz values)
// approximate the extremal spectrum of the (preconditioned) operator.
// The tridiagonal eigenvalues are computed by Sturm-sequence bisection,
// which is simple, robust, and exactly what is needed for just the two
// extremal values.
package eigen

import (
	"errors"
	"fmt"
	"math"
)

// FromCG builds the Lanczos tridiagonal (diagonal d, off-diagonal e with
// e[i] coupling rows i and i+1) from the CG coefficients α₀..α_{m-1} and
// β₀..β_{m-2}:
//
//	d[0] = 1/α₀,  d[i] = 1/αᵢ + β_{i-1}/α_{i-1},  e[i] = √βᵢ / αᵢ.
//
// This is the standard CG↔Lanczos correspondence (Saad, Iterative Methods
// for Sparse Linear Systems) and the construction TeaLeaf performs in
// tl_calc_2norm/tea_calc_eigenvalues.
func FromCG(alphas, betas []float64) (d, e []float64, err error) {
	m := len(alphas)
	if m == 0 {
		return nil, nil, errors.New("eigen: need at least one CG iteration")
	}
	if len(betas) < m-1 {
		return nil, nil, fmt.Errorf("eigen: need %d betas for %d alphas, got %d", m-1, m, len(betas))
	}
	for i, a := range alphas {
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, nil, fmt.Errorf("eigen: alpha[%d] = %v not positive and finite", i, a)
		}
	}
	for i := 0; i < m-1; i++ {
		if b := betas[i]; b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, nil, fmt.Errorf("eigen: beta[%d] = %v negative or not finite", i, b)
		}
	}
	d = make([]float64, m)
	e = make([]float64, m-1)
	d[0] = 1 / alphas[0]
	for i := 1; i < m; i++ {
		d[i] = 1/alphas[i] + betas[i-1]/alphas[i-1]
	}
	for i := 0; i < m-1; i++ {
		e[i] = math.Sqrt(betas[i]) / alphas[i]
	}
	return d, e, nil
}

// GershgorinBounds returns an interval guaranteed to contain every
// eigenvalue of the symmetric tridiagonal (d, e).
func GershgorinBounds(d, e []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range d {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < len(e) {
			r += math.Abs(e[i])
		}
		lo = math.Min(lo, d[i]-r)
		hi = math.Max(hi, d[i]+r)
	}
	return lo, hi
}

// CountBelow returns the number of eigenvalues of the symmetric
// tridiagonal (d, e) that are strictly less than x, via the Sturm sequence
// of leading-principal-minor pivots (LDLᵀ negative-pivot count).
func CountBelow(d, e []float64, x float64) int {
	count := 0
	q := 1.0
	for i := range d {
		off := 0.0
		if i > 0 {
			off = e[i-1] * e[i-1]
		}
		if q == 0 {
			// Standard guard: nudge a zero pivot to a tiny negative-free
			// value so the recurrence continues (Parlett, The Symmetric
			// Eigenvalue Problem).
			q = 1e-300
		}
		q = d[i] - x - off/q
		if q < 0 {
			count++
		}
	}
	return count
}

// Extremal returns the smallest and largest eigenvalues of the symmetric
// tridiagonal (d, e), each located by bisection to relative tolerance tol
// (absolute near zero).
func Extremal(d, e []float64, tol float64) (lambdaMin, lambdaMax float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	lo, hi := GershgorinBounds(d, e)
	n := len(d)
	lambdaMin = bisect(d, e, lo, hi, 1, tol) // first eigenvalue
	lambdaMax = bisect(d, e, lo, hi, n, tol) // last eigenvalue
	return lambdaMin, lambdaMax
}

// bisect finds the k-th smallest eigenvalue (1-based) in [lo, hi].
func bisect(d, e []float64, lo, hi float64, k int, tol float64) float64 {
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if CountBelow(d, e, mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo <= tol*math.Max(1, math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// All returns every eigenvalue of the symmetric tridiagonal (d, e) in
// ascending order, by repeated bisection. Intended for tests and small
// Lanczos matrices (the solver only ever needs the extremes).
func All(d, e []float64, tol float64) []float64 {
	if tol <= 0 {
		tol = 1e-12
	}
	n := len(d)
	lo, hi := GershgorinBounds(d, e)
	out := make([]float64, n)
	for k := 1; k <= n; k++ {
		out[k-1] = bisect(d, e, lo, hi, k, tol)
	}
	return out
}

// Estimate holds extremal eigenvalue estimates together with the safety
// factors applied. TeaLeaf widens the Ritz interval slightly because the
// Lanczos values converge to the true extremes from inside; an
// underestimated λmax makes Chebyshev diverge.
type Estimate struct {
	Min, Max float64
	// RawMin, RawMax are the unwidened Ritz values.
	RawMin, RawMax float64
	// Iterations is the number of CG iterations the estimate was built from.
	Iterations int
}

// Safety factors applied to the Ritz values, matching TeaLeaf's defaults.
const (
	SafetyMin = 0.95 // λmin is multiplied by this (pushed down)
	SafetyMax = 1.05 // λmax is multiplied by this (pushed up)
)

// EstimateFromCG turns recorded CG coefficients into a widened extremal
// eigenvalue estimate.
func EstimateFromCG(alphas, betas []float64) (Estimate, error) {
	d, e, err := FromCG(alphas, betas)
	if err != nil {
		return Estimate{}, err
	}
	mn, mx := Extremal(d, e, 1e-12)
	if mn <= 0 {
		// The operator is SPD; a non-positive Ritz value means the CG run
		// was too short or the scalars were polluted. Fall back to a
		// conservative positive floor so Chebyshev still converges.
		mn = mx * 1e-6
	}
	return Estimate{
		Min: mn * SafetyMin, Max: mx * SafetyMax,
		RawMin: mn, RawMax: mx,
		Iterations: len(alphas),
	}, nil
}

// ConditionNumber returns Max/Min.
func (est Estimate) ConditionNumber() float64 { return est.Max / est.Min }
