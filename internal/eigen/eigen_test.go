package eigen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// laplacian1D returns the tridiagonal of the 1D Dirichlet Laplacian
// [2 -1; -1 2 -1; ...], whose eigenvalues are 2 - 2cos(kπ/(n+1)).
func laplacian1D(n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	return
}

func laplacianEigen(n, k int) float64 {
	return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
}

func TestExtremalLaplacian(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 50} {
		d, e := laplacian1D(n)
		mn, mx := Extremal(d, e, 1e-13)
		wantMin := laplacianEigen(n, 1)
		wantMax := laplacianEigen(n, n)
		if math.Abs(mn-wantMin) > 1e-10 {
			t.Errorf("n=%d: min = %v, want %v", n, mn, wantMin)
		}
		if math.Abs(mx-wantMax) > 1e-10 {
			t.Errorf("n=%d: max = %v, want %v", n, mx, wantMax)
		}
	}
}

func TestAllLaplacian(t *testing.T) {
	n := 8
	d, e := laplacian1D(n)
	got := All(d, e, 1e-13)
	for k := 1; k <= n; k++ {
		want := laplacianEigen(n, k)
		if math.Abs(got[k-1]-want) > 1e-10 {
			t.Errorf("eig %d = %v, want %v", k, got[k-1], want)
		}
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("All must return ascending eigenvalues")
	}
}

func TestCountBelow(t *testing.T) {
	d, e := laplacian1D(5)
	// All eigenvalues are in (0, 4).
	if c := CountBelow(d, e, 0); c != 0 {
		t.Errorf("CountBelow(0) = %d, want 0", c)
	}
	if c := CountBelow(d, e, 4.0001); c != 5 {
		t.Errorf("CountBelow(4+) = %d, want 5", c)
	}
	if c := CountBelow(d, e, 2); c != 2 { // eigenvalues symmetric about 2; λ3 = 2 exactly
		t.Errorf("CountBelow(2) = %d, want 2", c)
	}
	// Diagonal matrix: trivial counting.
	if c := CountBelow([]float64{1, 2, 3}, []float64{0, 0}, 2.5); c != 2 {
		t.Errorf("diag CountBelow = %d, want 2", c)
	}
}

func TestCountBelowMonotoneQuick(t *testing.T) {
	d, e := laplacian1D(12)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return CountBelow(d, e, a) <= CountBelow(d, e, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGershgorinContainsSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 5
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		lo, hi := GershgorinBounds(d, e)
		for _, ev := range All(d, e, 1e-12) {
			if ev < lo-1e-9 || ev > hi+1e-9 {
				t.Fatalf("eigenvalue %v outside Gershgorin [%v,%v]", ev, lo, hi)
			}
		}
	}
}

func TestFromCGValidation(t *testing.T) {
	if _, _, err := FromCG(nil, nil); err == nil {
		t.Error("empty alphas must error")
	}
	if _, _, err := FromCG([]float64{1, 1}, nil); err == nil {
		t.Error("missing betas must error")
	}
	if _, _, err := FromCG([]float64{-1}, nil); err == nil {
		t.Error("negative alpha must error")
	}
	if _, _, err := FromCG([]float64{1, 1}, []float64{-0.5}); err == nil {
		t.Error("negative beta must error")
	}
	if _, _, err := FromCG([]float64{math.NaN()}, nil); err == nil {
		t.Error("NaN alpha must error")
	}
	d, e, err := FromCG([]float64{0.5}, nil)
	if err != nil || len(d) != 1 || len(e) != 0 {
		t.Fatalf("single-alpha: d=%v e=%v err=%v", d, e, err)
	}
	if d[0] != 2 {
		t.Errorf("d[0] = %v, want 1/0.5 = 2", d[0])
	}
}

func TestFromCGConstruction(t *testing.T) {
	alphas := []float64{0.5, 0.25}
	betas := []float64{0.16}
	d, e, err := FromCG(alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-2) > 1e-15 {
		t.Errorf("d[0] = %v", d[0])
	}
	if want := 4 + 0.16/0.5; math.Abs(d[1]-want) > 1e-15 {
		t.Errorf("d[1] = %v, want %v", d[1], want)
	}
	if want := math.Sqrt(0.16) / 0.5; math.Abs(e[0]-want) > 1e-15 {
		t.Errorf("e[0] = %v, want %v", e[0], want)
	}
}

// TestLanczosRecoversDiagonalSpectrum runs exact CG arithmetic on a small
// diagonal matrix and checks the Ritz values converge to the true extremes.
func TestLanczosRecoversDiagonalSpectrum(t *testing.T) {
	// Diagonal operator with known spectrum.
	diag := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := len(diag)
	apply := func(x []float64) []float64 {
		y := make([]float64, n)
		for i := range x {
			y[i] = diag[i] * x[i]
		}
		return y
	}
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	// CG from a dense right-hand side; run to (near) completion so the
	// Lanczos matrix carries the full spectrum.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rr := dot(r, r)
	var alphas, betas []float64
	for it := 0; it < n; it++ {
		w := apply(p)
		alpha := rr / dot(p, w)
		alphas = append(alphas, alpha)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * w[i]
		}
		rrNew := dot(r, r)
		if rrNew < 1e-28 {
			break
		}
		beta := rrNew / rr
		betas = append(betas, beta)
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	est, err := EstimateFromCG(alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.RawMin-1) > 1e-6 {
		t.Errorf("RawMin = %v, want 1", est.RawMin)
	}
	if math.Abs(est.RawMax-10) > 1e-6 {
		t.Errorf("RawMax = %v, want 10", est.RawMax)
	}
	// Safety factors widen the interval.
	if est.Min >= est.RawMin || est.Max <= est.RawMax {
		t.Error("safety factors must widen the estimate")
	}
	if math.Abs(est.ConditionNumber()-est.Max/est.Min) > 1e-15 {
		t.Error("ConditionNumber wrong")
	}
	if est.Iterations != len(alphas) {
		t.Error("Iterations not recorded")
	}
}

func TestEstimateFromCGFloorsNonPositiveMin(t *testing.T) {
	// A 1-iteration estimate has a single Ritz value; Min floor logic
	// must keep the estimate usable.
	est, err := EstimateFromCG([]float64{0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Min <= 0 || est.Max <= 0 {
		t.Errorf("estimate must be positive: %+v", est)
	}
}
