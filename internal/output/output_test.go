package output

import (
	"bytes"
	"strings"
	"testing"

	"tealeaf/internal/grid"
)

func gradientField(nx, ny int) *grid.Field2D {
	g := grid.MustGrid2D(nx, ny, 1, 0, 1, 0, 1)
	f := grid.NewField2D(g)
	for k := 0; k < ny; k++ {
		for j := 0; j < nx; j++ {
			f.Set(j, k, float64(j+k))
		}
	}
	return f
}

func TestWritePGM(t *testing.T) {
	f := gradientField(8, 4)
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 0, 0); err != nil { // auto-range
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n8 4\n255\n")) {
		t.Fatalf("bad header: %q", data[:16])
	}
	pixels := data[len("P5\n8 4\n255\n"):]
	if len(pixels) != 32 {
		t.Fatalf("pixel count = %d", len(pixels))
	}
	// Top-left pixel is cell (0, NY-1) = value 3; bottom-right is (7,0)=7.
	// Range [0,10] → check monotone scan along the last row.
	if pixels[len(pixels)-1] <= pixels[len(pixels)-8] {
		t.Error("bottom row must increase left to right")
	}
	// Min maps to 0, max to 255.
	var lo, hi byte = 255, 0
	for _, p := range pixels {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo != 0 || hi != 255 {
		t.Errorf("auto-range must span [0,255], got [%d,%d]", lo, hi)
	}
}

func TestWritePGMConstantField(t *testing.T) {
	g := grid.MustGrid2D(4, 4, 1, 0, 1, 0, 1)
	f := grid.NewField2D(g)
	f.FillBounds(g.Interior(), 5)
	var buf bytes.Buffer
	if err := WritePGM(&buf, f, 0, 0); err != nil {
		t.Fatalf("constant field must not divide by zero: %v", err)
	}
}

func TestWritePPM(t *testing.T) {
	f := gradientField(6, 6)
	var buf bytes.Buffer
	if err := WritePPM(&buf, f, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n6 6\n255\n")) {
		t.Fatal("bad PPM header")
	}
	pix := buf.Bytes()[len("P6\n6 6\n255\n"):]
	if len(pix) != 6*6*3 {
		t.Fatalf("PPM pixel bytes = %d", len(pix))
	}
	// Coldest cell (bottom-left in field = value 0) must be blue-ish, the
	// hottest red-ish. Bottom field row is the LAST image row.
	last := pix[len(pix)-18:]
	if last[2] != 255 || last[0] != 0 {
		t.Errorf("cold pixel rgb = %v, want blue", last[:3])
	}
	first := pix[:18] // top image row = hottest field row
	r, g, b := first[15], first[16], first[17]
	if r != 255 || b != 0 {
		t.Errorf("hot pixel rgb = (%d,%d,%d), want red", r, g, b)
	}
}

func TestHeatColorRamp(t *testing.T) {
	r0, _, b0 := heatColor(0)
	r1, _, b1 := heatColor(1)
	if b0 != 255 || r0 != 0 {
		t.Error("t=0 must be blue")
	}
	if r1 != 255 || b1 != 0 {
		t.Error("t=1 must be red")
	}
	// Out-of-range clamps.
	heatColor(-1)
	heatColor(2)
}

func TestASCIIHeatmap(t *testing.T) {
	f := gradientField(32, 32)
	s := ASCIIHeatmap(f, 16, 8)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 16 {
			t.Fatalf("row width = %d", len(l))
		}
	}
	// Hot corner (top right) must use a denser glyph than cold corner
	// (bottom left).
	ramp := " .:-=+*#%@"
	hot := strings.IndexByte(ramp, lines[0][15])
	cold := strings.IndexByte(ramp, lines[7][0])
	if hot <= cold {
		t.Errorf("hot glyph %d must rank above cold %d", hot, cold)
	}
	// Degenerate sizes clamp.
	_ = ASCIIHeatmap(f, 0, 0)
	_ = ASCIIHeatmap(f, 1000, 1000)
}

func TestWriteCSVSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVSeries(&buf, "nodes", []int{1, 2, 4},
		[]string{"cg", "ppcg"}, [][]float64{{3, 2, 1}, {2.5, 1.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "nodes,cg,ppcg\n1,3,2.5\n2,2,1.5\n4,1,0.5\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
	// Length mismatch.
	if err := WriteCSVSeries(&buf, "x", []int{1}, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestWriteVTK(t *testing.T) {
	f := gradientField(4, 3)
	var buf bytes.Buffer
	err := WriteVTK(&buf, "test", map[string]*grid.Field2D{"energy": f, "density": f})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DIMENSIONS 4 3 1",
		"SCALARS density double 1",
		"SCALARS energy double 1",
		"POINT_DATA 12",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VTK missing %q", want)
		}
	}
	// density must come before energy (sorted).
	if strings.Index(s, "density") > strings.Index(s, "energy") {
		t.Error("fields must be sorted")
	}
	if err := WriteVTK(&buf, "x", nil); err == nil {
		t.Error("no fields must error")
	}
	g2 := grid.MustGrid2D(5, 3, 1, 0, 1, 0, 1)
	if err := WriteVTK(&buf, "x", map[string]*grid.Field2D{"a": f, "b": grid.NewField2D(g2)}); err == nil {
		t.Error("mismatched grids must error")
	}
}
