// Package output renders fields and data series: PGM/PPM heatmaps (the
// Fig. 3 temperature plot), terminal ASCII heatmaps, CSV series for the
// strong-scaling figures, and legacy-VTK structured grids for external
// viewers.
package output

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"tealeaf/internal/grid"
)

// WritePGM writes the interior of f as a binary 8-bit PGM image, mapping
// [lo, hi] to [0, 255]. Pass lo >= hi to auto-range. Row order is flipped
// so y increases upward as in the paper's plots.
func WritePGM(w io.Writer, f *grid.Field2D, lo, hi float64) error {
	g := f.Grid
	if lo >= hi {
		lo, hi = f.MinMaxInterior()
		if lo == hi {
			hi = lo + 1
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.NX, g.NY)
	for k := g.NY - 1; k >= 0; k-- {
		for j := 0; j < g.NX; j++ {
			v := (f.At(j, k) - lo) / (hi - lo)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			if err := bw.WriteByte(byte(v * 255)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WritePPM writes a false-colour PPM using a blue→red heat map like the
// paper's Fig. 3 ("redder colors indicate higher temperatures").
func WritePPM(w io.Writer, f *grid.Field2D, lo, hi float64) error {
	g := f.Grid
	if lo >= hi {
		lo, hi = f.MinMaxInterior()
		if lo == hi {
			hi = lo + 1
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", g.NX, g.NY)
	for k := g.NY - 1; k >= 0; k-- {
		for j := 0; j < g.NX; j++ {
			v := (f.At(j, k) - lo) / (hi - lo)
			r, gg, b := heatColor(v)
			bw.WriteByte(r)
			bw.WriteByte(gg)
			bw.WriteByte(b)
		}
	}
	return bw.Flush()
}

// heatColor maps t ∈ [0,1] onto a blue→cyan→yellow→red ramp.
func heatColor(t float64) (r, g, b byte) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	switch {
	case t < 0.25:
		return 0, byte(255 * t / 0.25), 255
	case t < 0.5:
		return 0, 255, byte(255 * (0.5 - t) / 0.25)
	case t < 0.75:
		return byte(255 * (t - 0.5) / 0.25), 255, 0
	default:
		return 255, byte(255 * (1 - t) / 0.25), 0
	}
}

// ASCIIHeatmap renders the interior of f as a width×height character
// map using a density ramp, averaging cells into character bins; handy
// for eyeballing the crooked pipe in a terminal.
func ASCIIHeatmap(f *grid.Field2D, width, height int) string {
	g := f.Grid
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 32
	}
	if width > g.NX {
		width = g.NX
	}
	if height > g.NY {
		height = g.NY
	}
	lo, hi := f.MinMaxInterior()
	if hi == lo {
		hi = lo + 1
	}
	// Log scale reveals the pipe against the cold wall (the paper's plot
	// is linear but its dynamic range is small; ours spans decades).
	ramp := " .:-=+*#%@"
	var sb strings.Builder
	for row := height - 1; row >= 0; row-- {
		k0 := row * g.NY / height
		k1 := (row + 1) * g.NY / height
		for col := 0; col < width; col++ {
			j0 := col * g.NX / width
			j1 := (col + 1) * g.NX / width
			var sum float64
			n := 0
			for k := k0; k < k1; k++ {
				for j := j0; j < j1; j++ {
					sum += f.At(j, k)
					n++
				}
			}
			v := sum / float64(n)
			t := math.Log1p(v-lo) / math.Log1p(hi-lo)
			idx := int(t * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteCSVSeries writes aligned series as CSV: a header then one row per
// x value. All series must share xs.
func WriteCSVSeries(w io.Writer, xName string, xs []int, names []string, series [][]float64) error {
	for i, s := range series {
		if len(s) != len(xs) {
			return fmt.Errorf("output: series %q has %d points, want %d", names[i], len(s), len(xs))
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s", xName)
	for _, n := range names {
		fmt.Fprintf(bw, ",%s", n)
	}
	fmt.Fprintln(bw)
	for i, x := range xs {
		fmt.Fprintf(bw, "%d", x)
		for _, s := range series {
			fmt.Fprintf(bw, ",%.6g", s[i])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteVTK writes the interior of the named fields as a legacy-VTK
// structured-points dataset readable by ParaView/VisIt.
func WriteVTK(w io.Writer, title string, fields map[string]*grid.Field2D) error {
	if len(fields) == 0 {
		return fmt.Errorf("output: no fields to write")
	}
	var g *grid.Grid2D
	for _, f := range fields {
		if g == nil {
			g = f.Grid
		} else if f.Grid.NX != g.NX || f.Grid.NY != g.NY {
			return fmt.Errorf("output: VTK fields must share a grid")
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\nDATASET STRUCTURED_POINTS\n", title)
	fmt.Fprintf(bw, "DIMENSIONS %d %d 1\n", g.NX, g.NY)
	fmt.Fprintf(bw, "ORIGIN %g %g 0\n", g.XMin+g.DX/2, g.YMin+g.DY/2)
	fmt.Fprintf(bw, "SPACING %g %g 1\n", g.DX, g.DY)
	fmt.Fprintf(bw, "POINT_DATA %d\n", g.NX*g.NY)
	// Deterministic field order.
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sortStrings(names)
	for _, name := range names {
		f := fields[name]
		fmt.Fprintf(bw, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
		for k := 0; k < g.NY; k++ {
			for j := 0; j < g.NX; j++ {
				fmt.Fprintf(bw, "%g\n", f.At(j, k))
			}
		}
	}
	return bw.Flush()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
