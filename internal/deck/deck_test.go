package deck

import (
	"os"
	"strings"
	"testing"
)

const sampleDeck = `
*tea
! crooked pipe style test deck
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=2.5 ymin=4.0 ymax=6.0
state 3 density=0.1 energy=0.1 geometry=circle xcentre=5.0 ycentre=5.0 radius=1.5
state 4 density=0.2 energy=1.0 geometry=point xcentre=9.0 ycentre=9.0

x_cells=400
y_cells=200
xmin=0.0
xmax=10.0
ymin=0.0
ymax=5.0

initial_timestep=0.04
end_time=15.0
end_step=375

tl_use_ppcg
tl_ppcg_inner_steps=12
tl_max_iters=20000
tl_eps=1.0e-12
tl_preconditioner_type jac_block
tl_coefficient_recip_density
profiler_on
*endtea
`

func TestParseSampleDeck(t *testing.T) {
	d, err := ParseString(sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.XCells != 400 || d.YCells != 200 {
		t.Errorf("cells = %dx%d", d.XCells, d.YCells)
	}
	if d.XMax != 10 || d.YMax != 5 {
		t.Errorf("extent = %v,%v", d.XMax, d.YMax)
	}
	if d.InitialTimestep != 0.04 || d.EndTime != 15 || d.EndStep != 375 {
		t.Errorf("time controls wrong: %+v", d)
	}
	if d.Solver != "ppcg" || d.InnerSteps != 12 || d.MaxIters != 20000 {
		t.Errorf("solver controls wrong: %+v", d)
	}
	if d.Eps != 1e-12 {
		t.Errorf("eps = %v", d.Eps)
	}
	if d.Precond != "jac_block" {
		t.Errorf("precond = %q", d.Precond)
	}
	if d.Coefficient != "recip_density" {
		t.Errorf("coefficient = %q", d.Coefficient)
	}
	if !d.ProfilerOn {
		t.Error("profiler_on not parsed")
	}
	if len(d.States) != 4 {
		t.Fatalf("states = %d", len(d.States))
	}
	if d.States[0].Geometry != GeomNone || d.States[0].Density != 100 {
		t.Errorf("state 1 wrong: %+v", d.States[0])
	}
	s2 := d.States[1]
	if s2.Geometry != GeomRectangle || s2.XMax != 2.5 || s2.YMin != 4 {
		t.Errorf("state 2 wrong: %+v", s2)
	}
	s3 := d.States[2]
	if s3.Geometry != GeomCircle || s3.Radius != 1.5 || s3.CX != 5 {
		t.Errorf("state 3 wrong: %+v", s3)
	}
	if d.States[3].Geometry != GeomPoint {
		t.Errorf("state 4 wrong: %+v", d.States[3])
	}
}

func TestParseDefaultsPreserved(t *testing.T) {
	d, err := ParseString("*tea\nstate 1 density=1.0 energy=1.0\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	def := Default()
	if d.Solver != def.Solver || d.Eps != def.Eps || d.MaxIters != def.MaxIters {
		t.Errorf("defaults not preserved: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no block":         "x_cells=10",
		"unknown option":   "*tea\nstate 1 density=1 energy=1\nbogus_option=3\n*endtea",
		"bad state attr":   "*tea\nstate 1 density=1 energy=1 wibble=2\n*endtea",
		"bad geometry":     "*tea\nstate 1 density=1 energy=1\nstate 2 density=1 energy=1 geometry=blob\n*endtea",
		"no states":        "*tea\nx_cells=4\n*endtea",
		"neg density":      "*tea\nstate 1 density=-1 energy=1\n*endtea",
		"neg energy":       "*tea\nstate 1 density=1 energy=-1\n*endtea",
		"zero cells":       "*tea\nstate 1 density=1 energy=1\nx_cells=0\n*endtea",
		"bad int":          "*tea\nstate 1 density=1 energy=1\nx_cells=abc\n*endtea",
		"bad float":        "*tea\nstate 1 density=1 energy=1\ntl_eps=xyz\n*endtea",
		"empty extent":     "*tea\nstate 1 density=1 energy=1\nxmin=5\nxmax=5\n*endtea",
		"bad state line":   "*tea\nstate x density=1\n*endtea",
		"malformed attr":   "*tea\nstate 1 density\n*endtea",
		"state1 with geom": "*tea\nstate 1 density=1 energy=1 geometry=rectangle\n*endtea",
		"zero halo depth":  "*tea\nstate 1 density=1 energy=1\nhalo_depth=0\n*endtea",
		"nonpositive eps":  "*tea\nstate 1 density=1 energy=1\ntl_eps=0\n*endtea",
	}
	for name, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	in := `
! leading comment
this line is outside the block and ignored entirely

*tea
# hash comment
state 1 density=2.0 energy=3.0

x_cells=8
*endtea
trailing junk also ignored
`
	d, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.XCells != 8 || d.States[0].Density != 2 {
		t.Errorf("parse through comments failed: %+v", d)
	}
}

func TestCaseInsensitive(t *testing.T) {
	d, err := ParseString("*TEA\nSTATE 1 DENSITY=1.5 ENERGY=2.0\nX_CELLS=16\nTL_USE_CHEBYSHEV\n*ENDTEA")
	if err != nil {
		t.Fatal(err)
	}
	if d.XCells != 16 || d.Solver != "chebyshev" || d.States[0].Density != 1.5 {
		t.Errorf("case-insensitive parse failed: %+v", d)
	}
}

func TestSolverFlags(t *testing.T) {
	for flag, want := range map[string]string{
		"tl_use_cg": "cg", "tl_use_jacobi": "jacobi",
		"tl_use_chebyshev": "chebyshev", "tl_use_ppcg": "ppcg",
	} {
		d, err := ParseString("*tea\nstate 1 density=1 energy=1\n" + flag + "\n*endtea")
		if err != nil {
			t.Fatal(err)
		}
		if d.Solver != want {
			t.Errorf("%s => %q, want %q", flag, d.Solver, want)
		}
	}
}

func TestSpaceSeparatedOption(t *testing.T) {
	d, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_preconditioner_type jac_diag\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if d.Precond != "jac_diag" {
		t.Errorf("precond = %q", d.Precond)
	}
}

func TestSteps(t *testing.T) {
	d := Default()
	d.InitialTimestep = 0.04
	d.EndTime = 15
	d.EndStep = 1000
	if got := d.Steps(); got != 375 {
		t.Errorf("Steps = %d, want 375", got)
	}
	d.EndStep = 100
	if got := d.Steps(); got != 100 {
		t.Errorf("capped Steps = %d, want 100", got)
	}
	d.EndStep = 0
	d.EndTime = 0.01 // less than one dt
	if got := d.Steps(); got < 1 {
		t.Errorf("Steps must be at least 1, got %d", got)
	}
}

func TestIgnoredLegacyOptions(t *testing.T) {
	d, err := ParseString("*tea\nstate 1 density=1 energy=1\ntest_problem=5\nvisit_frequency=10\nsummary_frequency=1\n*endtea")
	if err != nil {
		t.Fatalf("legacy options must be accepted: %v", err)
	}
	_ = d
}

func TestParseReaderError(t *testing.T) {
	// A deck parsed from a reader with embedded NULs still scans; just
	// confirm Parse handles io.Reader directly.
	if _, err := Parse(strings.NewReader("*tea\nstate 1 density=1 energy=1\n*endtea")); err != nil {
		t.Fatal(err)
	}
}

func TestFusedDotsAndEigenIters(t *testing.T) {
	d, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_fused_dots\ntl_eigen_cg_iters=8\ntl_ppcg_halo_depth=4\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if !d.FusedDots || d.EigenCGIters != 8 || d.HaloDepth != 4 {
		t.Errorf("extensions not parsed: %+v", d)
	}
}

func TestTilingKeys(t *testing.T) {
	// tl_tiling alone: auto tile shape.
	d, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_tiling\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Tiling || d.TileX != 0 || d.TileY != 0 || d.TileZ != 0 {
		t.Errorf("tl_tiling: got Tiling=%v tiles %dx%dx%d, want auto (true, 0x0x0)", d.Tiling, d.TileX, d.TileY, d.TileZ)
	}
	// Any explicit edge implies tiling.
	d, err = ParseString("*tea\nstate 1 density=1 energy=1\ntl_tile_y=128\ntl_tile_z=4\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Tiling || d.TileX != 0 || d.TileY != 128 || d.TileZ != 4 {
		t.Errorf("tile edges: got Tiling=%v tiles %dx%dx%d, want true, 0x128x4", d.Tiling, d.TileX, d.TileY, d.TileZ)
	}
	// Negative edges are rejected.
	if _, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_tile_x=-2\n*endtea"); err == nil {
		t.Error("negative tile edge must fail validation")
	}
	// Default decks stay untiled (byte-stable legacy schedules).
	if d := Default(); d.Tiling {
		t.Error("Default() must not enable tiling")
	}
}

func TestDeflationKeys(t *testing.T) {
	d, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_use_deflation\ntl_deflation_blocks=4\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseDeflation || d.DeflationBlocks != 4 {
		t.Errorf("deflation keys not parsed: %+v", d)
	}
	// Default block count without the key.
	d, err = ParseString("*tea\nstate 1 density=1 energy=1\ntl_use_deflation\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if d.DeflationBlocks != 8 {
		t.Errorf("default deflation blocks = %d, want 8", d.DeflationBlocks)
	}
	// tl_deflation_levels parses, defaults to 1, and is bounded by the
	// hierarchy the block partition supports.
	d, err = ParseString("*tea\nstate 1 density=1 energy=1\ntl_use_deflation\ntl_deflation_levels=2\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	if d.DeflationLevels != 2 {
		t.Errorf("deflation levels = %d, want 2", d.DeflationLevels)
	}
	if Default().DeflationLevels != 1 {
		t.Errorf("default deflation levels = %d, want 1", Default().DeflationLevels)
	}
	// 3D decks now compose: tl_use_deflation must validate on dims=3.
	if _, err := ParseString("*tea\ndims=3\nz_cells=8\nstate 1 density=1 energy=1\ntl_use_deflation\n*endtea"); err != nil {
		t.Errorf("tl_use_deflation on a 3D deck must validate: %v", err)
	}
	// Composition errors at deck validation: over-fine partitions (in any
	// direction, z included) and hierarchies deeper than the block grid.
	if _, err := ParseString("*tea\nx_cells=4\ny_cells=4\nstate 1 density=1 energy=1\ntl_use_deflation\n*endtea"); err == nil {
		t.Error("deflation blocks beyond the mesh must be rejected")
	}
	if _, err := ParseString("*tea\ndims=3\nz_cells=4\nstate 1 density=1 energy=1\ntl_use_deflation\ntl_deflation_blocks=8\n*endtea"); err == nil {
		t.Error("deflation blocks beyond the z extent must be rejected")
	}
	if _, err := ParseString("*tea\nstate 1 density=1 energy=1\ntl_use_deflation\ntl_deflation_blocks=4\ntl_deflation_levels=4\n*endtea"); err == nil {
		t.Error("deflation levels beyond the hierarchy must be rejected")
	}
}

func TestParseShippedDeck(t *testing.T) {
	f, err := os.Open("../../decks/crooked_pipe.in")
	if err != nil {
		t.Skipf("shipped deck not present: %v", err)
	}
	defer f.Close()
	d, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solver != "ppcg" || d.XCells != 128 || len(d.States) != 7 {
		t.Errorf("shipped deck parsed wrongly: %+v", d)
	}
	if d.Steps() != 375 {
		t.Errorf("steps = %d", d.Steps())
	}
}

func TestParse3DDeck(t *testing.T) {
	d, err := ParseString(`
*tea
dims=3
x_cells=16
y_cells=12
z_cells=8
xmin=0.0
xmax=4.0
ymin=0.0
ymax=3.0
zmin=0.0
zmax=2.0
initial_timestep=0.01
end_step=3
tl_use_ppcg
state 1 density=10 energy=0.01
state 2 density=0.1 energy=20 geometry=rectangle xmin=0 xmax=1 ymin=0 ymax=1 zmin=0 zmax=1
state 3 density=0.2 energy=5 geometry=circle xcentre=2 ycentre=1.5 zcentre=1 radius=0.5
*endtea
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dims != 3 || d.ZCells != 8 || d.ZMin != 0 || d.ZMax != 2 {
		t.Errorf("3D geometry not parsed: %+v", d)
	}
	if d.States[1].ZMin != 0 || d.States[1].ZMax != 1 {
		t.Errorf("state z-range not parsed: %+v", d.States[1])
	}
	if d.States[2].CZ != 1 {
		t.Errorf("state zcentre not parsed: %+v", d.States[2])
	}
}

func TestValidate3DDeck(t *testing.T) {
	d := Default()
	d.Dims = 3
	d.ZCells = 0
	d.States = []State{{Index: 1, Density: 1, Energy: 1}}
	if err := d.Validate(); err == nil {
		t.Error("3D deck without z_cells must fail validation")
	}
	d.ZCells = 4
	d.ZMin, d.ZMax = 1, 1
	if err := d.Validate(); err == nil {
		t.Error("empty z extent must fail validation")
	}
	d.ZMax = 2
	if err := d.Validate(); err != nil {
		t.Errorf("valid 3D deck rejected: %v", err)
	}
	d.Dims = 4
	if err := d.Validate(); err == nil {
		t.Error("dims=4 must fail validation")
	}
}
