package deck

import (
	"reflect"
	"strings"
	"testing"
)

// fuzzSeeds are the in-source seed inputs for FuzzParseString; the
// committed corpus under testdata/fuzz/FuzzParseString adds nastier
// cases found by earlier fuzzing runs. Together they cover every key
// family the parser accepts plus structurally broken inputs.
var fuzzSeeds = []string{
	"",
	"*tea\n*endtea",
	"*tea\nstate 1 density=1 energy=1\n*endtea",
	"! comment only\n*tea\nstate 1 density=100 energy=0.0001\nstate 2 density=0.1 energy=25 geometry=rectangle xmin=0 xmax=1 ymin=1 ymax=3\n*endtea\n",
	"*tea\ndims=3\nz_cells=8\nzmin=0\nzmax=1\nstate 1 density=1 energy=1\nstate 2 density=2 energy=3 geometry=circle xcentre=0.5 ycentre=0.5 zcentre=0.5 radius=0.2\n*endtea",
	"*tea\ntl_use_ppcg\ntl_ppcg_inner_steps=4\ntl_ppcg_halo_depth=2\ntl_preconditioner_type jac_block\nstate 1 density=1 energy=1\n*endtea",
	"*tea\ntl_use_deflation\ntl_deflation_blocks=4\ntl_deflation_levels=2\ntl_pipelined\ntl_split_sweeps\ntl_tiling\ntl_tile_y=8\nstate 1 density=1 energy=1\n*endtea",
	"*tea\nx_cells=-1\nstate 1 density=1 energy=1\n*endtea",
	"*tea\nstate 1 density=nan energy=inf\n*endtea",
	"*tea\nstate abc\n*endtea",
	"*TEA\nSTATE 1 DENSITY=2 ENERGY=3\n*ENDTEA",
	"*tea\ntest_problem 5\nvisit_frequency=10\nprofiler_on\ntl_fused_dots\ntl_coefficient_recip_density\nstate 1 density=1 energy=1\n*endtea",
}

// FuzzParseString asserts the parser's two safety properties on
// arbitrary input: it never panics (the fuzz engine fails on any panic),
// and every ACCEPTED deck survives a parse → Format → parse round-trip
// bit-exactly — the property the shrinker and the fuzz harness's
// "ready-to-run reproducer" output rely on.
func FuzzParseString(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseString(s)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		text := d.Format()
		d2, err := ParseString(text)
		if err != nil {
			t.Fatalf("accepted deck did not re-parse: %v\nformatted:\n%s", err, text)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round-trip changed the deck:\nbefore: %+v\nafter:  %+v\nformatted:\n%s", d, d2, text)
		}
	})
}

// TestFormatRoundTripsCannedDecks runs the same round-trip property over
// the seed inputs directly, so it is checked on every ordinary `go test`
// run, not only under -fuzz.
func TestFormatRoundTripsCannedDecks(t *testing.T) {
	for i, s := range fuzzSeeds {
		d, err := ParseString(s)
		if err != nil {
			continue
		}
		d2, err := ParseString(d.Format())
		if err != nil {
			t.Errorf("seed %d: formatted deck did not re-parse: %v", i, err)
			continue
		}
		if !reflect.DeepEqual(d, d2) {
			t.Errorf("seed %d: round-trip changed the deck\nbefore: %+v\nafter:  %+v", i, d, d2)
		}
	}
}

// TestFormatIsValidatedOutput pins details of the canonical form: flag
// keys appear only when set, state attributes only when non-zero, and
// the output itself passes Validate via ParseString.
func TestFormatIsValidatedOutput(t *testing.T) {
	d, err := ParseString("*tea\ntl_use_ppcg\nstate 1 density=1 energy=0\nstate 2 density=3 energy=4 geometry=point xcentre=2 ycentre=7\n*endtea")
	if err != nil {
		t.Fatal(err)
	}
	text := d.Format()
	for _, absent := range []string{"tl_pipelined", "tl_tiling", "tl_use_deflation\n", "profiler_on", "radius="} {
		if strings.Contains(text, absent) {
			t.Errorf("canonical form of a plain deck mentions %q:\n%s", absent, text)
		}
	}
	for _, present := range []string{"tl_use_ppcg", "state 1 density=1 energy=0\n", "geometry=point", "xcentre=2"} {
		if !strings.Contains(text, present) {
			t.Errorf("canonical form is missing %q:\n%s", present, text)
		}
	}
}
