package deck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// parserKeyStrings extracts every string literal that appears in a case
// clause of the named functions in deck.go — i.e. the exact key and
// attribute vocabulary the parser accepts. Reading them from the AST
// (rather than maintaining a parallel list) means this test cannot drift
// from the code it checks.
func parserKeyStrings(t *testing.T, funcNames ...string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "deck.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing deck.go: %v", err)
	}
	want := make(map[string]bool, len(funcNames))
	for _, n := range funcNames {
		want[n] = true
	}
	var keys []string
	seen := map[string]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !want[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, e := range cc.List {
				lit, ok := e.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || s == "" || seen[s] {
					continue
				}
				seen[s] = true
				keys = append(keys, s)
			}
			return true
		})
	}
	if len(keys) == 0 {
		t.Fatalf("no case-clause key strings found in %v — did the parser structure change?", funcNames)
	}
	return keys
}

// TestDeckFormatDocCoversAllKeys is the docs-freshness check: every deck
// key and state attribute the parser accepts must be mentioned in
// docs/deck-format.md. Add the key to the reference table when extending
// the dialect — CI runs this, so the documentation cannot silently rot.
func TestDeckFormatDocCoversAllKeys(t *testing.T) {
	doc, err := os.ReadFile("../../docs/deck-format.md")
	if err != nil {
		t.Fatalf("reading docs/deck-format.md: %v", err)
	}
	text := string(doc)
	keys := parserKeyStrings(t, "parseLine", "parseState")
	if len(keys) < 30 {
		t.Errorf("only %d parser keys found; the AST extraction looks broken", len(keys))
	}
	var missing []string
	for _, k := range keys {
		if !strings.Contains(text, k) {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		t.Errorf("docs/deck-format.md does not mention the deck key(s) %q accepted by internal/deck; add them to the reference table", missing)
	}
}
