// Package deck parses TeaLeaf input decks (the tea.in dialect): the grid
// extents, the material/energy states that paint the initial condition,
// time-stepping controls, and the tl_* solver options. Lines outside the
// *tea ... *endtea block are ignored, as are blank lines and comments
// starting with '!' or '#'.
//
// Beyond stock TeaLeaf, the dialect adds: dims/z_cells/zmin/zmax (3D
// decks), tl_fused_dots (fused ρ/‖r‖ reductions on the unfused loops),
// tl_pipelined (Ghysels–Vanroose pipelined CG: the iteration's single
// reduction round overlaps the matvec sweep), tl_split_sweeps
// (interior/boundary split matvec sweeps so halo exchanges overlap the
// interior pass), and the deflation keys tl_use_deflation /
// tl_deflation_blocks=N / tl_deflation_levels=L (subdomain deflation as
// an outer Krylov projector; N coarse blocks per direction over the
// global mesh, default 8, with an L-deep nested hierarchy — composes
// with tl_use_cg and tl_use_ppcg in 2D and 3D, single- or multi-rank).
package deck

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Geometry names the shape a state paints.
type Geometry string

// The geometries TeaLeaf's generate_chunk supports.
const (
	GeomNone      Geometry = ""          // state 1: fills the whole domain
	GeomRectangle Geometry = "rectangle" // axis-aligned box
	GeomCircle    Geometry = "circle"    // disc of Radius around (CX, CY)
	GeomPoint     Geometry = "point"     // single cell containing (CX, CY)
)

// State is one material region of the initial condition. State 1 is the
// background (no geometry); later states overwrite it inside their shape.
type State struct {
	Index    int
	Density  float64
	Energy   float64
	Geometry Geometry
	// Rectangle extents. On a 3D deck a rectangle is a box; a state whose
	// z-range is empty (ZMax <= ZMin, the zero value) spans the whole
	// domain in z, so 2D state definitions extrude naturally.
	XMin, XMax, YMin, YMax float64
	ZMin, ZMax             float64
	// Circle/point location and radius (sphere centre in 3D).
	CX, CY, CZ, Radius float64
}

// Deck is a parsed input deck.
type Deck struct {
	// Dims selects the spatial dimensionality: 2 (default) or 3. A 3D
	// deck additionally uses ZCells and the z extents.
	Dims                   int
	XCells, YCells, ZCells int
	XMin, XMax, YMin, YMax float64
	ZMin, ZMax             float64

	InitialTimestep float64
	EndTime         float64
	EndStep         int

	Solver       string // cg | ppcg | chebyshev | jacobi
	MaxIters     int
	Eps          float64
	InnerSteps   int
	HaloDepth    int
	EigenCGIters int
	Precond      string // none | jac_diag | jac_block
	Coefficient  string // density | recip_density
	FusedDots    bool
	ProfilerOn   bool
	// Pipelined selects the Ghysels–Vanroose pipelined CG engine
	// (tl_pipelined): each iteration's single fused reduction round is
	// started before the matvec sweep and finished after it, hiding the
	// collective's latency behind a full sweep of local work. Same
	// applicability rules as the fused engine (diagonal or identity
	// preconditioner); falls back to fused/classic otherwise.
	Pipelined bool
	// SplitSweeps splits the fused/pipelined engines' A·(M⁻¹r) sweep into
	// an interior pass overlapped with the halo exchange plus a
	// boundary-ring completion (tl_split_sweeps).
	SplitSweeps bool
	// UseDeflation composes subdomain deflation as an outer projector
	// around the CG or PPCG solve (tl_use_deflation; §VII future work).
	// Works in 2D and 3D, single- and multi-rank: the coarse space is
	// built over the global mesh and the projector's reductions run
	// through the solve's communicator.
	UseDeflation bool
	// DeflationBlocks is the coarse subdomain count per direction
	// (tl_deflation_blocks, default 8): the deflation space is spanned by
	// the indicator vectors of an N×N (2D) or N×N×N (3D) block partition
	// of the global mesh.
	DeflationBlocks int
	// DeflationLevels is the nested coarse-hierarchy depth
	// (tl_deflation_levels, default 1): 1 solves the coarse matrix by
	// dense Cholesky; L > 1 deflates it recursively over blocks-of-blocks
	// aggregations, with the dense solve only at the top — the paper's
	// §VII "series of nested lower dimensional sub-spaces".
	DeflationLevels int
	// Tiling routes the hot sweeps through the cache-tiled scheduler
	// (tl_tiling): the iteration space is cut into LLC-sized tiles with
	// reduction partials folded in a fixed tile order, bit-identical
	// across worker counts. Setting any tl_tile_* key implies it.
	Tiling bool
	// TileX/TileY/TileZ are the tile edge lengths in cells (tl_tile_x /
	// tl_tile_y / tl_tile_z). 0 (the default) auto-tunes the shape from
	// the host's cache model (machine.HostDevice().TileFor) when tiling
	// is on; an explicit value pins that axis.
	TileX, TileY, TileZ int
	// Temporal chains the d sweeps of each deep-halo solve iteration
	// band-by-band over LLC-sized bands (tl_temporal): each band streams
	// through the cache once per iteration instead of once per sweep,
	// bit-identical to the unchained deep-halo cycle. Requires tl_tiling
	// (the chained reduction fold needs the tiled scheduler's fixed tile
	// order); a no-op unless the solve is deep (tl_ppcg_halo_depth > 1)
	// and fused or pipelined. Setting tl_chain_bands implies it.
	Temporal bool
	// ChainBands is the approximate band height in cells along the chain
	// axis (tl_chain_bands; Y in 2D, Z in 3D), rounded up to whole tile
	// rows. 0 (the default) auto-sizes bands from the host's cache model
	// (machine.HostDevice().ChainBandRows) when tl_temporal is on.
	ChainBands int

	States []State
}

// Default returns a deck with TeaLeaf's documented defaults (tea.in's
// implicit values): a 10×10 unit-square-style domain, CG solver, eps 1e-10.
func Default() *Deck {
	return &Deck{
		Dims:   2,
		XCells: 10, YCells: 10, ZCells: 10,
		XMin: 0, XMax: 10, YMin: 0, YMax: 10, ZMin: 0, ZMax: 10,
		InitialTimestep: 0.04,
		EndTime:         10,
		EndStep:         2147483647,
		Solver:          "cg",
		MaxIters:        10000,
		Eps:             1e-10,
		InnerSteps:      10,
		HaloDepth:       1,
		EigenCGIters:    20,
		Precond:         "none",
		Coefficient:     "density",
		DeflationBlocks: 8,
		DeflationLevels: 1,
	}
}

// Parse reads a deck from r, applying values over Default().
func Parse(r io.Reader) (*Deck, error) {
	d := Default()
	sc := bufio.NewScanner(r)
	inBlock := false
	sawBlock := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case lower == "*tea":
			inBlock = true
			sawBlock = true
			continue
		case lower == "*endtea":
			inBlock = false
			continue
		}
		if !inBlock {
			continue
		}
		if err := d.parseLine(lower); err != nil {
			return nil, fmt.Errorf("deck: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("deck: %w", err)
	}
	if !sawBlock {
		return nil, fmt.Errorf("deck: no *tea block found")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

func (d *Deck) parseLine(line string) error {
	if strings.HasPrefix(line, "state") {
		return d.parseState(line)
	}
	// Normalise "key value" to "key=value" for flag-style options that
	// TeaLeaf writes with a space (tl_preconditioner_type jac_block).
	fields := strings.Fields(line)
	if len(fields) == 2 && !strings.Contains(line, "=") {
		line = fields[0] + "=" + fields[1]
	}

	key, val, hasVal := strings.Cut(line, "=")
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	switch key {
	case "x_cells":
		return d.setInt(&d.XCells, val)
	case "y_cells":
		return d.setInt(&d.YCells, val)
	case "z_cells":
		return d.setInt(&d.ZCells, val)
	case "dims":
		return d.setInt(&d.Dims, val)
	case "zmin":
		return d.setFloat(&d.ZMin, val)
	case "zmax":
		return d.setFloat(&d.ZMax, val)
	case "xmin":
		return d.setFloat(&d.XMin, val)
	case "xmax":
		return d.setFloat(&d.XMax, val)
	case "ymin":
		return d.setFloat(&d.YMin, val)
	case "ymax":
		return d.setFloat(&d.YMax, val)
	case "initial_timestep":
		return d.setFloat(&d.InitialTimestep, val)
	case "end_time":
		return d.setFloat(&d.EndTime, val)
	case "end_step":
		return d.setInt(&d.EndStep, val)
	case "tl_max_iters":
		return d.setInt(&d.MaxIters, val)
	case "tl_eps":
		return d.setFloat(&d.Eps, val)
	case "tl_ppcg_inner_steps":
		return d.setInt(&d.InnerSteps, val)
	case "tl_ppcg_halo_depth", "halo_depth":
		return d.setInt(&d.HaloDepth, val)
	case "tl_eigen_cg_iters", "tl_ch_cg_presteps":
		return d.setInt(&d.EigenCGIters, val)
	case "tl_preconditioner_type":
		d.Precond = val
		return nil
	case "tl_use_cg":
		d.Solver = "cg"
		return nil
	case "tl_use_jacobi":
		d.Solver = "jacobi"
		return nil
	case "tl_use_chebyshev":
		d.Solver = "chebyshev"
		return nil
	case "tl_use_ppcg":
		d.Solver = "ppcg"
		return nil
	case "tl_fused_dots":
		d.FusedDots = true
		return nil
	case "tl_pipelined":
		d.Pipelined = true
		return nil
	case "tl_split_sweeps":
		d.SplitSweeps = true
		return nil
	case "tl_use_deflation":
		d.UseDeflation = true
		return nil
	case "tl_deflation_blocks":
		return d.setInt(&d.DeflationBlocks, val)
	case "tl_deflation_levels":
		return d.setInt(&d.DeflationLevels, val)
	case "tl_tiling":
		d.Tiling = true
		return nil
	case "tl_tile_x":
		d.Tiling = true
		return d.setInt(&d.TileX, val)
	case "tl_tile_y":
		d.Tiling = true
		return d.setInt(&d.TileY, val)
	case "tl_tile_z":
		d.Tiling = true
		return d.setInt(&d.TileZ, val)
	case "tl_temporal":
		d.Temporal = true
		return nil
	case "tl_chain_bands":
		d.Temporal = true
		return d.setInt(&d.ChainBands, val)
	case "tl_coefficient_density":
		d.Coefficient = "density"
		return nil
	case "tl_coefficient_recip_density":
		d.Coefficient = "recip_density"
		return nil
	case "profiler_on":
		d.ProfilerOn = true
		return nil
	case "test_problem", "visit_frequency", "summary_frequency":
		// Accepted, ignored: present in stock tea.in files but irrelevant
		// to the solve.
		_ = hasVal
		return nil
	}
	return fmt.Errorf("unknown option %q", key)
}

func (d *Deck) parseState(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "state" {
		return fmt.Errorf("malformed state line %q", line)
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("state index: %w", err)
	}
	st := State{Index: idx}
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("state %d: malformed attribute %q", idx, f)
		}
		switch key {
		case "density":
			err = parseFloatInto(&st.Density, val)
		case "energy":
			err = parseFloatInto(&st.Energy, val)
		case "geometry":
			switch Geometry(val) {
			case GeomRectangle, GeomCircle, GeomPoint:
				st.Geometry = Geometry(val)
			default:
				err = fmt.Errorf("unknown geometry %q", val)
			}
		case "xmin":
			err = parseFloatInto(&st.XMin, val)
		case "xmax":
			err = parseFloatInto(&st.XMax, val)
		case "ymin":
			err = parseFloatInto(&st.YMin, val)
		case "ymax":
			err = parseFloatInto(&st.YMax, val)
		case "zmin":
			err = parseFloatInto(&st.ZMin, val)
		case "zmax":
			err = parseFloatInto(&st.ZMax, val)
		case "radius":
			err = parseFloatInto(&st.Radius, val)
		case "xcentre", "xcenter":
			err = parseFloatInto(&st.CX, val)
		case "ycentre", "ycenter":
			err = parseFloatInto(&st.CY, val)
		case "zcentre", "zcenter":
			err = parseFloatInto(&st.CZ, val)
		default:
			err = fmt.Errorf("unknown attribute %q", key)
		}
		if err != nil {
			return fmt.Errorf("state %d: %w", idx, err)
		}
	}
	d.States = append(d.States, st)
	return nil
}

func (d *Deck) setInt(dst *int, val string) error {
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (d *Deck) setFloat(dst *float64, val string) error { return parseFloatInto(dst, val) }

func parseFloatInto(dst *float64, val string) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// Validate checks deck consistency. It never mutates the deck: a shared
// *Deck is validated concurrently by every rank goroutine of a
// distributed run. A zero Dims (zero-value decks built in code) is read
// as 2D.
func (d *Deck) Validate() error {
	dims := d.Dims
	if dims == 0 {
		dims = 2
	}
	switch {
	case dims != 2 && dims != 3:
		return fmt.Errorf("deck: dims must be 2 or 3, got %d", d.Dims)
	case d.XCells <= 0 || d.YCells <= 0:
		return fmt.Errorf("deck: cell counts must be positive (%d x %d)", d.XCells, d.YCells)
	case dims == 3 && d.ZCells <= 0:
		return fmt.Errorf("deck: z_cells must be positive for a 3D deck, got %d", d.ZCells)
	case !finiteAll(d.XMin, d.XMax, d.YMin, d.YMax, d.ZMin, d.ZMax):
		return fmt.Errorf("deck: domain extents must be finite")
	case !finiteAll(d.InitialTimestep, d.EndTime, d.Eps):
		return fmt.Errorf("deck: initial_timestep, end_time and tl_eps must be finite")
	case d.XMax <= d.XMin || d.YMax <= d.YMin:
		return fmt.Errorf("deck: domain extents must be non-empty")
	case dims == 3 && d.ZMax <= d.ZMin:
		return fmt.Errorf("deck: z extents must be non-empty for a 3D deck")
	case d.InitialTimestep <= 0:
		return fmt.Errorf("deck: initial_timestep must be positive")
	case d.EndTime <= 0 && d.EndStep <= 0:
		return fmt.Errorf("deck: need end_time or end_step")
	case d.Eps <= 0:
		return fmt.Errorf("deck: tl_eps must be positive")
	case d.HaloDepth < 1:
		return fmt.Errorf("deck: halo depth must be >= 1")
	case d.TileX < 0 || d.TileY < 0 || d.TileZ < 0:
		return fmt.Errorf("deck: tile edges must be >= 0 (0 = auto), got %dx%dx%d", d.TileX, d.TileY, d.TileZ)
	case d.ChainBands < 0:
		return fmt.Errorf("deck: tl_chain_bands must be >= 0 (0 = auto), got %d", d.ChainBands)
	case d.Temporal && !d.Tiling:
		return fmt.Errorf("deck: tl_temporal requires tl_tiling (the chained reduction fold needs the tiled scheduler's fixed tile order)")
	case len(d.States) == 0:
		return fmt.Errorf("deck: need at least one state")
	}
	if d.UseDeflation {
		bx := d.DeflationBlocks
		if bx < 1 {
			return fmt.Errorf("deck: tl_deflation_blocks must be >= 1, got %d", bx)
		}
		if bx > d.XCells || bx > d.YCells {
			return fmt.Errorf("deck: tl_deflation_blocks %d exceeds the mesh (%dx%d cells)", bx, d.XCells, d.YCells)
		}
		if dims == 3 && bx > d.ZCells {
			return fmt.Errorf("deck: tl_deflation_blocks %d exceeds the mesh in z (%d cells)", bx, d.ZCells)
		}
		levels := d.DeflationLevels
		if levels == 0 {
			levels = 1 // zero-value decks built in code
		}
		if levels < 1 {
			return fmt.Errorf("deck: tl_deflation_levels must be >= 1, got %d", d.DeflationLevels)
		}
		// Each nesting step halves the block grid; the hierarchy bottoms
		// out once every direction is a single block.
		if maxHalvings(bx)+1 < levels {
			return fmt.Errorf("deck: tl_deflation_levels %d exceeds the hierarchy of a %d-block partition (at most %d levels)",
				levels, bx, maxHalvings(bx)+1)
		}
	}
	// The first state is the background whatever its index: problem.Paint
	// refuses a leading geometry state, so rejecting it here (not only
	// when Index == 1, as earlier versions did) keeps "Validate passed"
	// meaning "the deck can actually be painted".
	if d.States[0].Geometry != GeomNone {
		return fmt.Errorf("deck: the first state is the background and takes no geometry")
	}
	for _, s := range d.States {
		if !finiteAll(s.Density, s.Energy, s.XMin, s.XMax, s.YMin, s.YMax,
			s.ZMin, s.ZMax, s.CX, s.CY, s.CZ, s.Radius) {
			return fmt.Errorf("deck: state %d has a non-finite attribute", s.Index)
		}
		if s.Density <= 0 {
			return fmt.Errorf("deck: state %d density must be positive", s.Index)
		}
		if s.Energy < 0 {
			return fmt.Errorf("deck: state %d energy must be non-negative", s.Index)
		}
	}
	return nil
}

// finiteAll reports whether every value is a finite float: NaN and ±Inf
// deck parameters pass every ordered comparison in the checks above
// (NaN compares false against everything), then poison the solve, so
// they are rejected wholesale.
func finiteAll(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// maxHalvings counts how many times n can be ceil-halved before reaching
// 1 — the number of nesting steps a deflation hierarchy over n blocks per
// direction supports. The (n+1)/2 step must stay in lockstep with the
// aggregation rule in internal/deflate (hierarchy.go, aggregations): deck
// validation promises exactly what the constructor will accept.
func maxHalvings(n int) int {
	h := 0
	for n > 1 {
		n = (n + 1) / 2
		h++
	}
	return h
}

// Steps returns the number of time steps the deck requests: end_time
// divided by the fixed dt, capped by end_step.
func (d *Deck) Steps() int {
	byTime := int(d.EndTime/d.InitialTimestep + 0.5)
	if byTime < 1 {
		byTime = 1
	}
	if d.EndStep > 0 && d.EndStep < byTime {
		return d.EndStep
	}
	return byTime
}
