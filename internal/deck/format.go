package deck

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the deck as canonical tea.in text: a *tea/*endtea block
// holding every parser-settable key, flag keys only when set, and one
// state line per state with only its non-zero attributes. The output is
// the exchange format the property harness and the shrinker use for
// "ready-to-run" reproducers, and it round-trips exactly:
// ParseString(d.Format()) yields a deck DeepEqual to d for any d that
// itself came out of the parser (floats are printed with
// strconv.FormatFloat 'g'/-1, the shortest string that re-parses to the
// identical bits).
func (d *Deck) Format() string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	w("*tea")
	w("dims=%d", d.Dims)
	w("x_cells=%d", d.XCells)
	w("y_cells=%d", d.YCells)
	w("z_cells=%d", d.ZCells)
	w("xmin=%s", g(d.XMin))
	w("xmax=%s", g(d.XMax))
	w("ymin=%s", g(d.YMin))
	w("ymax=%s", g(d.YMax))
	w("zmin=%s", g(d.ZMin))
	w("zmax=%s", g(d.ZMax))
	w("initial_timestep=%s", g(d.InitialTimestep))
	w("end_time=%s", g(d.EndTime))
	w("end_step=%d", d.EndStep)
	w("tl_use_%s", d.Solver)
	w("tl_max_iters=%d", d.MaxIters)
	w("tl_eps=%s", g(d.Eps))
	w("tl_ppcg_inner_steps=%d", d.InnerSteps)
	w("tl_ppcg_halo_depth=%d", d.HaloDepth)
	w("tl_eigen_cg_iters=%d", d.EigenCGIters)
	w("tl_preconditioner_type=%s", d.Precond)
	w("tl_coefficient_%s", d.Coefficient)
	if d.FusedDots {
		w("tl_fused_dots")
	}
	if d.Pipelined {
		w("tl_pipelined")
	}
	if d.SplitSweeps {
		w("tl_split_sweeps")
	}
	if d.ProfilerOn {
		w("profiler_on")
	}
	if d.UseDeflation {
		w("tl_use_deflation")
	}
	w("tl_deflation_blocks=%d", d.DeflationBlocks)
	w("tl_deflation_levels=%d", d.DeflationLevels)
	if d.Tiling {
		w("tl_tiling")
		if d.TileX != 0 {
			w("tl_tile_x=%d", d.TileX)
		}
		if d.TileY != 0 {
			w("tl_tile_y=%d", d.TileY)
		}
		if d.TileZ != 0 {
			w("tl_tile_z=%d", d.TileZ)
		}
	}
	if d.Temporal {
		w("tl_temporal")
		if d.ChainBands != 0 {
			w("tl_chain_bands=%d", d.ChainBands)
		}
	}
	for _, s := range d.States {
		sb.WriteString(formatState(s, g))
	}
	w("*endtea")
	return sb.String()
}

// formatState renders one state line. Zero-valued attributes are omitted
// (the parser leaves unmentioned attributes at zero, so the round-trip is
// exact); geometry is written first for readability.
func formatState(s State, g func(float64) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "state %d density=%s energy=%s", s.Index, g(s.Density), g(s.Energy))
	if s.Geometry != GeomNone {
		fmt.Fprintf(&sb, " geometry=%s", s.Geometry)
	}
	attr := func(name string, v float64) {
		if v != 0 {
			fmt.Fprintf(&sb, " %s=%s", name, g(v))
		}
	}
	attr("xmin", s.XMin)
	attr("xmax", s.XMax)
	attr("ymin", s.YMin)
	attr("ymax", s.YMax)
	attr("zmin", s.ZMin)
	attr("zmax", s.ZMax)
	attr("xcentre", s.CX)
	attr("ycentre", s.CY)
	attr("zcentre", s.CZ)
	attr("radius", s.Radius)
	sb.WriteByte('\n')
	return sb.String()
}
