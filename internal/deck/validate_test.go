package deck

import (
	"strings"
	"testing"
)

// TestEveryRejectionPath drives every parse- and validation-rejection
// message in the package through ParseString at least once, asserting on
// a distinctive fragment of each message so a reworded or dead error
// path fails loudly. The deck snippets are minimal: `base` is the
// smallest accepted deck, and each case perturbs exactly one thing.
func TestEveryRejectionPath(t *testing.T) {
	const base = "state 1 density=1 energy=1\n"
	deck := func(lines ...string) string {
		return "*tea\n" + strings.Join(lines, "\n") + "\n*endtea\n"
	}
	cases := []struct {
		name string
		in   string
		want string // substring of the error message
	}{
		// Parse-level structure.
		{"no tea block", "x_cells=10\n", "no *tea block"},
		{"unknown option", deck(base, "frobnicate=3"), `unknown option "frobnicate"`},
		{"unknown option reports line", "*tea\nstate 1 density=1 energy=1\nfrobnicate=3\n*endtea\n", "line 3"},
		{"bad int value", deck(base, "x_cells=many"), "invalid syntax"},
		{"bad float value", deck(base, "tl_eps=tiny"), "invalid syntax"},
		{"float overflow", deck(base, "tl_eps=1e999"), "value out of range"},

		// State-line parsing.
		{"malformed state line", deck("statex=1"), "malformed state line"},
		{"bad state index", deck("state one density=1 energy=1"), "state index"},
		{"malformed attribute", deck("state 1 density"), `malformed attribute "density"`},
		{"unknown geometry", deck(base, "state 2 density=1 energy=1 geometry=hexagon"), `unknown geometry "hexagon"`},
		{"unknown attribute", deck(base, "state 2 density=1 energy=1 wobble=2"), `unknown attribute "wobble"`},
		{"bad attribute float", deck("state 1 density=heavy energy=1"), "invalid syntax"},

		// Validate: dimensionality and mesh.
		{"bad dims", deck(base, "dims=4"), "dims must be 2 or 3"},
		{"zero x cells", deck(base, "x_cells=0"), "cell counts must be positive"},
		{"negative y cells", deck(base, "y_cells=-3"), "cell counts must be positive"},
		{"zero z cells 3d", deck(base, "dims=3", "z_cells=0"), "z_cells must be positive"},

		// Validate: extents and non-finite parameters.
		{"nan extent", deck(base, "xmax=nan"), "domain extents must be finite"},
		{"inf extent", deck(base, "ymin=-inf"), "domain extents must be finite"},
		{"nan timestep", deck(base, "initial_timestep=nan"), "initial_timestep, end_time and tl_eps must be finite"},
		{"inf end time", deck(base, "end_time=inf"), "initial_timestep, end_time and tl_eps must be finite"},
		{"nan eps", deck(base, "tl_eps=nan"), "initial_timestep, end_time and tl_eps must be finite"},
		{"empty x extent", deck(base, "xmin=5", "xmax=5"), "domain extents must be non-empty"},
		{"inverted y extent", deck(base, "ymin=2", "ymax=1"), "domain extents must be non-empty"},
		{"empty z extent 3d", deck(base, "dims=3", "zmin=1", "zmax=1"), "z extents must be non-empty"},

		// Validate: time stepping and solver controls.
		{"zero timestep", deck(base, "initial_timestep=0"), "initial_timestep must be positive"},
		{"no horizon", deck(base, "end_time=0", "end_step=0"), "need end_time or end_step"},
		{"zero eps", deck(base, "tl_eps=0"), "tl_eps must be positive"},
		{"zero halo depth", deck(base, "halo_depth=0"), "halo depth must be >= 1"},
		{"negative tile edge", deck(base, "tl_tile_y=-4"), "tile edges must be >= 0"},
		{"no states", deck("x_cells=8"), "need at least one state"},

		// Validate: deflation geometry.
		{"zero deflation blocks", deck(base, "tl_use_deflation", "tl_deflation_blocks=0"),
			"tl_deflation_blocks must be >= 1"},
		{"deflation blocks exceed mesh", deck(base, "x_cells=4", "y_cells=4", "tl_use_deflation"),
			"exceeds the mesh"},
		{"deflation blocks exceed z mesh", deck(base, "dims=3", "x_cells=8", "y_cells=8", "z_cells=4", "tl_use_deflation"),
			"exceeds the mesh in z"},
		{"negative deflation levels", deck(base, "tl_use_deflation", "tl_deflation_blocks=8", "tl_deflation_levels=-1"),
			"tl_deflation_levels must be >= 1"},
		{"deflation levels exceed hierarchy", deck(base, "tl_use_deflation", "tl_deflation_blocks=4", "tl_deflation_levels=4"),
			"exceeds the hierarchy"},

		// Validate: states.
		{"first state with geometry", deck("state 1 density=1 energy=1 geometry=rectangle xmax=1 ymax=1"),
			"the first state is the background"},
		{"first state with geometry, index not 1", deck("state 3 density=1 energy=1 geometry=circle radius=1"),
			"the first state is the background"},
		{"nan density", deck("state 1 density=nan energy=1"), "non-finite attribute"},
		{"inf energy", deck("state 1 density=1 energy=inf"), "non-finite attribute"},
		{"nan region attribute", deck(base, "state 2 density=1 energy=1 geometry=circle radius=nan"),
			"non-finite attribute"},
		{"zero density", deck("state 1 density=0 energy=1"), "density must be positive"},
		{"negative energy", deck("state 1 density=1 energy=-2"), "energy must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.in)
			if err == nil {
				t.Fatalf("deck accepted; want error containing %q\ndeck:\n%s", tc.want, tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsBoundaryValues pins the other side of each gate:
// the smallest values the rejection paths above must NOT fire on.
func TestValidateAcceptsBoundaryValues(t *testing.T) {
	for name, in := range map[string]string{
		"one cell":            "*tea\nx_cells=1\ny_cells=1\nstate 1 density=1 energy=1\n*endtea",
		"zero energy":         "*tea\nstate 1 density=1 energy=0\n*endtea",
		"end_step only":       "*tea\nend_time=0\nend_step=3\nstate 1 density=1 energy=1\n*endtea",
		"deflation one block": "*tea\ntl_use_deflation\ntl_deflation_blocks=1\nstate 1 density=1 energy=1\n*endtea",
		"levels at hierarchy": "*tea\ntl_use_deflation\ntl_deflation_blocks=4\ntl_deflation_levels=3\nstate 1 density=1 energy=1\n*endtea",
		"geometry later":      "*tea\nstate 1 density=1 energy=1\nstate 2 density=2 energy=3 geometry=point xcentre=5 ycentre=5\n*endtea",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseString(in); err != nil {
				t.Fatalf("boundary deck rejected: %v\ndeck:\n%s", err, in)
			}
		})
	}
}
