package deck_test

import (
	"fmt"
	"log"

	"tealeaf/internal/deck"
)

// ExampleParseString parses a minimal tea.in-dialect deck: defaults fill
// everything the deck does not set, and unknown keys are parse errors.
// See docs/deck-format.md for the complete key reference.
func ExampleParseString() {
	d, err := deck.ParseString(`
*tea
x_cells=64
y_cells=64
end_step=5
tl_use_ppcg
tl_ppcg_inner_steps=8
tl_preconditioner_type jac_diag
tl_eps=1e-12
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
*endtea
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d cells, solver=%s precond=%s eps=%g\n",
		d.XCells, d.YCells, d.Solver, d.Precond, d.Eps)
	fmt.Printf("steps=%d states=%d inner=%d\n", d.Steps(), len(d.States), d.InnerSteps)
	// Output:
	// 64x64 cells, solver=ppcg precond=jac_diag eps=1e-12
	// steps=5 states=2 inner=8
}
